package replica

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"time"

	"encoding/binary"

	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/wire"
)

// errStaleJoin reports a join from a node that has seen a newer epoch than
// this primary — this primary is the stale one and must not adopt it.
var errStaleJoin = errors.New("replica: joiner has seen a newer epoch")

// AttachClient routes a client attach (server.Replica). On the primary it
// returns the session — resuming an existing one when clientID matches a
// session the group already carries, which is how a failed-over client
// keeps its descriptor table. On a backup it fails with wire.ErrNotPrimary
// and the last known primary address for the redirect frame.
func (n *Node) AttachClient(cred fsapi.Cred, clientID uint64) (fsapi.Client, uint64, string, error) {
	if n.Role() != RolePrimary {
		addr, _ := n.primaryAddr.Load().(string)
		if addr == n.cfg.Advertise {
			addr = "" // don't redirect clients back to ourselves
		}
		return nil, 0, addr, wire.ErrNotPrimary
	}
	n.mu.Lock()
	if n.closed || n.fs == nil {
		n.mu.Unlock()
		return nil, 0, "", errors.New("replica: node closed")
	}
	if sess, ok := n.sessions[clientID]; ok && clientID != 0 {
		if sess.cred != cred {
			n.mu.Unlock()
			return nil, 0, "", fsapi.ErrPerm
		}
		sess.attached = true
		n.m.resumes.Add(1)
		n.mu.Unlock()
		return &mappedClient{inner: sess.client, s: sess}, sess.id, "", nil
	}
	client, err := n.fs.Attach(cred)
	if err != nil {
		n.mu.Unlock()
		return nil, 0, "", err
	}
	id := clientID
	if id == 0 {
		// A pre-replication client with no resume identity: synthesize one
		// that cannot collide with a real 64-bit random ID in practice.
		n.anonID++
		id = n.anonID | (1 << 63)
		for n.sessions[id] != nil {
			n.anonID++
			id = n.anonID | (1 << 63)
		}
	}
	sess := newSession(id, cred, client)
	sess.attached = true
	n.sessions[id] = sess
	n.seq++
	seq := n.seq
	n.shipLocked(&wire.Entry{Seq: seq, Sess: id, Kind: wire.EntryAttach, Cred: cred}, 0)
	n.mu.Unlock()
	// The session must exist on the quorum before the client can use it:
	// otherwise a failover between AttachOK and the first op would strand
	// the client on a node that never heard of it.
	n.WaitQuorum(seq)
	return &mappedClient{inner: client, s: sess}, id, "", nil
}

// Apply executes one replicated operation, ships its entry, and returns
// the response plus the sequence WaitQuorum must cover before the client
// may see it (server.Replica). A request ID already in the session's
// replay cache — a client retransmission after failover — is answered
// from the cache without re-executing.
//
// Pipelined execution (the default): data operations on open descriptors
// run under opGate's read side plus a per-inode stripe, so independent
// files execute concurrently; the log lock is held only for the sequence
// assignment and the entry append, and log order equals execution order
// per inode (the stripe spans exec and seq) and against every exclusive
// operation (opGate spans both). Namespace and descriptor operations take
// opGate exclusively. With Config.Lockstep every operation takes the
// exclusive path, restoring the serialized pre-pipelining behavior.
func (n *Node) Apply(sessID uint64, req *wire.Request, trace uint64, exec func() wire.Response) (wire.Response, uint64) {
	n.mu.Lock()
	sess := n.sessions[sessID]
	n.mu.Unlock()
	if sess == nil {
		code := wire.CodeOf(fsapi.ErrBadFD)
		return wire.Response{ID: req.ID, Op: req.Op, Code: code,
			Msg: wire.MsgFor(code, fsapi.ErrBadFD)}, 0
	}
	sess.dmu.Lock()
	if c, ok := sess.dedup[req.ID]; ok {
		sess.dmu.Unlock()
		n.m.dedupHits.Add(1)
		resp := c.resp
		resp.ID = req.ID
		return resp, c.seq
	}
	sess.dmu.Unlock()

	var resp wire.Response
	var seq uint64
	if !n.cfg.Lockstep && dataOp(req.Op) {
		_, ino, _ := sess.lookupVFDIno(req.FD)
		st := n.stripe(ino)
		n.opGate.RLock()
		st.Lock()
		resp = exec()
		if resp.Code == wire.CodeOK {
			// Failed operations mutate nothing; only successes enter the log.
			n.mu.Lock()
			n.seq++
			seq = n.seq
			e := wire.Entry{Seq: seq, Sess: sessID, Kind: wire.EntryOp, Req: *req}
			if req.Op == wire.OpPwrite {
				e.Kind = wire.EntryPwrite // compact form: id/fd/off/data only
			}
			n.shipLocked(&e, trace)
			n.mu.Unlock()
		}
		st.Unlock()
		n.opGate.RUnlock()
	} else {
		n.opGate.Lock()
		resp = exec()
		if resp.Code == wire.CodeOK {
			n.mu.Lock()
			n.seq++
			seq = n.seq
			e := wire.Entry{Seq: seq, Sess: sessID, Kind: wire.EntryOp, Req: *req}
			if req.Op == wire.OpCreate || req.Op == wire.OpOpen {
				e.ResFD = resp.FD // virtual: mappedClient already translated
			}
			n.shipLocked(&e, trace)
			if req.Op == wire.OpDetach {
				delete(n.sessions, sessID)
			}
			n.mu.Unlock()
		}
		n.opGate.Unlock()
	}
	sess.dmu.Lock()
	sess.cacheResp(req.ID, resp, seq)
	sess.dmu.Unlock()
	return resp, seq
}

// shipLocked appends one encoded entry to every live link's out-buffer and
// kicks their writers. With a single link — the common group shape — the
// entry encodes directly into that link's flat buffer; with several it is
// encoded once into the node's reused scratch and its bytes appended to
// each link's buffer. The steady state allocates nothing. A nonzero trace
// marks the link's pending drain as traced: the writer tags the frames it
// ships with the trace ID and emits the group-commit span. Caller holds
// n.mu.
func (n *Node) shipLocked(e *wire.Entry, trace uint64) {
	if len(n.links) == 0 {
		return
	}
	if len(n.links) == 1 {
		for l := range n.links {
			start := len(l.out)
			l.out = wire.AppendEntry(l.out, e)
			l.ends = append(l.ends, len(l.out))
			if trace != 0 {
				l.pendTrace = trace
				l.pendTraceTime = time.Now()
			}
			n.m.bytesShipped.Add(uint64(len(l.out) - start))
			select {
			case l.kick <- struct{}{}:
			default:
			}
		}
		n.m.entriesShipped.Add(1)
		return
	}
	n.shipBuf = wire.AppendEntry(n.shipBuf[:0], e)
	enc := n.shipBuf
	for l := range n.links {
		l.out = append(l.out, enc...)
		l.ends = append(l.ends, len(l.out))
		if trace != 0 {
			l.pendTrace = trace
			l.pendTraceTime = time.Now()
		}
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	n.m.entriesShipped.Add(uint64(len(n.links)))
	n.m.bytesShipped.Add(uint64(len(enc) * len(n.links)))
}

// WaitQuorum blocks until the sliding ack window — the cumulative
// applied-seq a quorum of live backups has reached — covers seq
// (server.Replica). The effective quorum is capped at the live link
// count: with no backup connected the primary acknowledges alone. Waiters
// block on the window floor alone; they are woken only when it advances
// (or membership changes), not on every ack frame.
func (n *Node) WaitQuorum(seq uint64) {
	if seq == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		need := n.cfg.Quorum
		if live := len(n.links); need > live {
			need = live
		}
		if need == 0 || n.closed || n.quorumSeq >= seq {
			return
		}
		n.cond.Wait()
	}
}

// refreshQuorumLocked recomputes the ack window floor — the k-th highest
// cumulative ack among live links, k = effective quorum — and reports
// whether it advanced. The floor is monotonic: a joining backup (which
// may raise k) never retracts acknowledgments already granted. Caller
// holds n.mu; on true the caller must cond.Broadcast.
func (n *Node) refreshQuorumLocked() bool {
	need := n.cfg.Quorum
	if live := len(n.links); need > live {
		need = live
	}
	if need == 0 {
		return false // WaitQuorum returns unconditionally; nothing to track
	}
	var floor uint64
	for l := range n.links {
		got := 0
		for o := range n.links {
			if o.ackedSeq >= l.ackedSeq {
				got++
			}
		}
		if got >= need && l.ackedSeq > floor {
			floor = l.ackedSeq
		}
	}
	if floor > n.quorumSeq {
		n.quorumSeq = floor
		return true
	}
	return false
}

// ReleaseSession marks a session's connection gone without detaching it,
// keeping it resumable for a failing-over client (server.Replica).
func (n *Node) ReleaseSession(sessID uint64) {
	n.mu.Lock()
	if sess := n.sessions[sessID]; sess != nil {
		sess.attached = false
		sess.released = time.Now()
	}
	n.mu.Unlock()
}

// Promote makes this node the primary (server.Replica; also called by the
// backup's failover watchdog). Idempotent on an existing primary.
func (n *Node) Promote() (uint64, error) {
	n.mu.Lock()
	if Role(n.role.Load()) == RolePrimary {
		ep := n.epoch.Load()
		n.mu.Unlock()
		return ep, nil
	}
	if n.fs == nil {
		n.mu.Unlock()
		return 0, errors.New("replica: cannot promote before a snapshot has been restored")
	}
	ep := n.epoch.Add(1)
	n.role.Store(int32(RolePrimary))
	n.primaryAddr.Store(n.cfg.Advertise)
	n.m.promotions.Add(1)
	n.mu.Unlock()
	if c, ok := n.joinConn.Load().(net.Conn); ok && c != nil {
		c.Close() // unblock the join loop; it exits on seeing the role
	}
	n.cond.Broadcast()
	n.cfg.Logf("replica: promoted to primary at epoch %d", ep)
	return ep, nil
}

// HandleJoin owns a backup's replication connection (server.Replica):
// snapshot transfer, then log shipping and heartbeats until the link dies.
func (n *Node) HandleJoin(conn net.Conn, fr *wire.FrameReader, payload []byte) error {
	j, err := wire.ParseJoin(payload)
	if err != nil {
		return err
	}
	if n.Role() != RolePrimary {
		wire.WriteFrame(conn, wire.KindErr, wire.AppendErrFrame(nil, wire.ErrNotPrimary))
		return wire.ErrNotPrimary
	}
	if j.Epoch > n.Epoch() {
		wire.WriteFrame(conn, wire.KindErr, wire.AppendErrFrame(nil, errStaleJoin))
		return errStaleJoin
	}

	// Capture a consistent cut: opGate held exclusively quiesces the
	// pipelined data executors (they run outside the log lock), and the
	// log lock freezes the log position and session manifest. The link
	// registers inside the same critical section, so every entry after
	// snapSeq reaches the backup through the link and none is
	// double-applied.
	var img bytes.Buffer
	n.opGate.Lock()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.opGate.Unlock()
		return errors.New("replica: node closed")
	}
	if err := n.cfg.Snapshot(&img); err != nil {
		n.mu.Unlock()
		n.opGate.Unlock()
		wire.WriteFrame(conn, wire.KindErr, wire.AppendErrFrame(nil, err))
		return fmt.Errorf("snapshot: %w", err)
	}
	jo := wire.JoinOK{
		Epoch:    n.Epoch(),
		SnapSeq:  n.seq,
		SnapSize: uint64(img.Len()),
	}
	for _, sess := range n.sessions {
		jo.Sessions = append(jo.Sessions, wire.SessionInfo{Sess: sess.id, Cred: sess.cred})
	}
	l := newLink(conn, j.Addr)
	// The snapshot already carries everything through snapSeq: the link's
	// cumulative ack starts there, so a joining backup participates in the
	// quorum window immediately instead of reading as infinitely behind.
	l.ackedSeq = jo.SnapSeq
	n.links[l] = struct{}{}
	n.refreshQuorumLocked()
	n.mu.Unlock()
	n.opGate.Unlock()
	n.m.joins.Add(1)
	n.cond.Broadcast() // link count changed; quorum math too

	detach := func() {
		n.mu.Lock()
		delete(n.links, l)
		// A slow link leaving can advance the window (k drops with it).
		n.refreshQuorumLocked()
		n.mu.Unlock()
		n.cond.Broadcast()
	}
	if err := wire.WriteFrame(conn, wire.KindJoinOK, wire.AppendJoinOK(nil, &jo)); err != nil {
		detach()
		return err
	}
	data := img.Bytes()
	for off := 0; off < len(data); off += wire.MaxIO {
		end := off + wire.MaxIO
		if end > len(data) {
			end = len(data)
		}
		c := wire.SnapChunk{Off: uint64(off), Data: data[off:end]}
		if err := wire.WriteFrame(conn, wire.KindSnapChunk, wire.AppendSnapChunk(nil, &c)); err != nil {
			detach()
			return err
		}
	}
	n.m.snapshotBytes.Add(uint64(len(data)))
	n.cfg.Logf("replica: backup %s joined at seq %d (%d MiB snapshot, %d sessions)",
		j.Addr, jo.SnapSeq, len(data)>>20, len(jo.Sessions))

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		l.runWriter(n)
	}()
	err = l.runReader(n, fr)
	conn.Close()
	detach()
	<-writerDone
	n.cfg.Logf("replica: backup %s link down: %v", j.Addr, err)
	return err
}

// link is one primary→backup replication connection.
type link struct {
	conn net.Conn
	addr string

	// out holds encoded entries awaiting shipment, flat, with ends marking
	// each entry's end offset (frame splits land on entry boundaries); both
	// are guarded by the node's log lock. spareOut/spareEnds are the
	// writer's drained double-buffer, swapped back in on the next takeover
	// so the steady state recycles two buffers and allocates neither. kick
	// wakes the writer.
	out       []byte
	ends      []int
	spareOut  []byte
	spareEnds []int
	kick      chan struct{}

	// inflight counts entries the writer has taken but not yet flushed to
	// the socket; with len(ends) it is the link's ship lag. Guarded by the
	// node's log lock.
	inflight int

	// pendTrace marks the buffered (not yet drained) entries as carrying a
	// sampled operation; the writer tags the drain's frames with it and
	// emits the group-commit and ship spans. pendTraceTime is when the
	// traced entry was appended. Both guarded by the node's log lock;
	// traceHdr is the writer-private encoding scratch for the frame prefix.
	pendTrace     uint64
	pendTraceTime time.Time
	traceHdr      [wire.TraceCtxSize]byte

	// ackedSeq is the backup's highest cumulatively applied sequence;
	// guarded by the node's log lock (the quorum window reads it there).
	ackedSeq uint64
}

func newLink(conn net.Conn, addr string) *link {
	return &link{conn: conn, addr: addr, kick: make(chan struct{}, 1)}
}

// runWriter ships buffered entries as KindReplicate frames — whatever has
// accumulated is split on entry boundaries into frames bounded by MaxFrame
// and MaxBatch, all staged and written with a single vectored write (the
// heartbeat rides the same writev) — and emits heartbeats on the
// configured interval.
func (l *link) runWriter(n *Node) {
	hb := time.NewTicker(n.cfg.HeartbeatInterval)
	defer hb.Stop()
	var vw wire.VecWriter
	var hbBuf []byte
	for {
		beat := false
		select {
		case <-l.kick:
		case <-hb.C:
			beat = true
		case <-n.stop:
			return
		}
		n.mu.Lock()
		out, ends := l.out, l.ends
		// The spares were drained by the previous iteration (this is the
		// only goroutine that writes them), so they are free to fill.
		l.out, l.ends = l.spareOut[:0], l.spareEnds[:0]
		l.spareOut, l.spareEnds = out, ends
		l.inflight = len(ends)
		trace, traceAt := l.pendTrace, l.pendTraceTime
		l.pendTrace = 0
		_, member := n.links[l]
		seq := n.seq
		n.mu.Unlock()
		if !member {
			return
		}
		// A traced drain ships as KindReplicateTraced frames, each prefixed
		// with the trace ID; the group-commit granularity is the whole drain,
		// so every frame it splits into carries the context.
		kind := wire.KindReplicate
		if trace != 0 {
			kind = wire.KindReplicateTraced
			binary.LittleEndian.PutUint64(l.traceHdr[:], trace)
		}
		stage := func(p []byte) {
			if trace != 0 {
				vw.StagePrefixed(kind, l.traceHdr[:], p)
			} else {
				vw.Stage(kind, p)
			}
		}
		frameStart, prev, count := 0, 0, 0
		frames := uint64(0)
		for _, end := range ends {
			if count > 0 && (count == wire.MaxBatch || end-frameStart > wire.MaxFrame-64) {
				stage(out[frameStart:prev])
				frames++
				frameStart = prev
				count = 0
			}
			prev = end
			count++
		}
		if count > 0 {
			stage(out[frameStart:prev])
			frames++
		}
		if beat {
			h := wire.Heartbeat{Epoch: n.Epoch(), Seq: seq, SentNs: uint64(time.Now().UnixNano())}
			hbBuf = wire.AppendHeartbeat(hbBuf[:0], &h)
			vw.Stage(wire.KindHeartbeat, hbBuf)
		}
		if vw.Count() == 0 {
			continue
		}
		var shipStart time.Time
		if trace != 0 {
			shipStart = time.Now()
			n.cfg.Obs.SpanCtx(obs.SpanRepCommit, 0, trace, traceAt, uint64(shipStart.Sub(traceAt)), false)
		}
		_, err := vw.Flush(l.conn)
		if trace != 0 {
			n.cfg.Obs.SpanCtx(obs.SpanRepShip, 0, trace, shipStart, uint64(time.Since(shipStart)), err != nil)
		}
		n.m.framesShipped.Add(frames)
		n.mu.Lock()
		l.inflight = 0
		n.mu.Unlock()
		if err != nil {
			l.conn.Close()
			return
		}
	}
}

// runReader consumes the backup's acks and heartbeat echoes until the
// connection dies.
func (l *link) runReader(n *Node, fr *wire.FrameReader) error {
	for {
		kind, payload, err := fr.Next()
		if err != nil {
			return err
		}
		switch kind {
		case wire.KindRepAck:
			a, err := wire.ParseRepAck(payload)
			if err != nil {
				return err
			}
			n.mu.Lock()
			advanced := false
			if a.Seq > l.ackedSeq {
				l.ackedSeq = a.Seq
				advanced = n.refreshQuorumLocked()
			}
			n.mu.Unlock()
			// Wake waiters only when the window floor actually moved: acks
			// from below-quorum links are bookkeeping, not progress.
			if advanced {
				n.cond.Broadcast()
			}
		case wire.KindHeartbeat:
			h, err := wire.ParseHeartbeat(payload)
			if err != nil {
				return err
			}
			if rtt := uint64(time.Now().UnixNano()) - h.SentNs; rtt < 1<<62 {
				n.m.heartbeatRTT.Store(rtt)
			}
		default:
			return fmt.Errorf("%w: unexpected kind %d on replication link", wire.ErrBadMessage, kind)
		}
	}
}

// mappedClient is the fsapi.Client handed to the server for a replicated
// session: it translates the client's virtual descriptors to this node's
// local ones and assigns virtual descriptors to fresh opens, so descriptor
// identity survives failover.
type mappedClient struct {
	inner fsapi.Client
	s     *session
}

func (m *mappedClient) Create(path string, perm uint32) (fsapi.FD, error) {
	lfd, err := m.inner.Create(path, perm)
	if err != nil {
		return -1, err
	}
	return m.s.allocVFD(lfd, inoOf(m.inner, lfd),
		openInfo{path: path, flags: fsapi.ORdwr, perm: perm}), nil
}

func (m *mappedClient) Open(path string, flags fsapi.OpenFlag, perm uint32) (fsapi.FD, error) {
	lfd, err := m.inner.Open(path, flags, perm)
	if err != nil {
		return -1, err
	}
	return m.s.allocVFD(lfd, inoOf(m.inner, lfd),
		openInfo{path: path, flags: sanitizeOpenFlags(flags), perm: perm}), nil
}

func (m *mappedClient) Close(fd fsapi.FD) error {
	lfd, ok := m.s.lookupVFD(fd)
	if !ok {
		return fsapi.ErrBadFD
	}
	if err := m.inner.Close(lfd); err != nil {
		return err
	}
	m.s.unmapVFD(fd)
	return nil
}

func (m *mappedClient) Read(fd fsapi.FD, p []byte) (int, error) {
	lfd, ok := m.s.lookupVFD(fd)
	if !ok {
		return 0, fsapi.ErrBadFD
	}
	return m.inner.Read(lfd, p)
}

func (m *mappedClient) Pread(fd fsapi.FD, p []byte, off uint64) (int, error) {
	lfd, ok := m.s.lookupVFD(fd)
	if !ok {
		return 0, fsapi.ErrBadFD
	}
	return m.inner.Pread(lfd, p, off)
}

func (m *mappedClient) Write(fd fsapi.FD, p []byte) (int, error) {
	lfd, ok := m.s.lookupVFD(fd)
	if !ok {
		return 0, fsapi.ErrBadFD
	}
	return m.inner.Write(lfd, p)
}

func (m *mappedClient) Pwrite(fd fsapi.FD, p []byte, off uint64) (int, error) {
	lfd, ok := m.s.lookupVFD(fd)
	if !ok {
		return 0, fsapi.ErrBadFD
	}
	return m.inner.Pwrite(lfd, p, off)
}

func (m *mappedClient) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	lfd, ok := m.s.lookupVFD(fd)
	if !ok {
		return 0, fsapi.ErrBadFD
	}
	return m.inner.Seek(lfd, off, whence)
}

func (m *mappedClient) Fsync(fd fsapi.FD) error {
	lfd, ok := m.s.lookupVFD(fd)
	if !ok {
		return fsapi.ErrBadFD
	}
	return m.inner.Fsync(lfd)
}

func (m *mappedClient) Ftruncate(fd fsapi.FD, size uint64) error {
	lfd, ok := m.s.lookupVFD(fd)
	if !ok {
		return fsapi.ErrBadFD
	}
	return m.inner.Ftruncate(lfd, size)
}

func (m *mappedClient) Fallocate(fd fsapi.FD, size uint64) error {
	lfd, ok := m.s.lookupVFD(fd)
	if !ok {
		return fsapi.ErrBadFD
	}
	return m.inner.Fallocate(lfd, size)
}

func (m *mappedClient) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	lfd, ok := m.s.lookupVFD(fd)
	if !ok {
		return fsapi.Stat{}, fsapi.ErrBadFD
	}
	return m.inner.Fstat(lfd)
}

func (m *mappedClient) Stat(path string) (fsapi.Stat, error)  { return m.inner.Stat(path) }
func (m *mappedClient) Lstat(path string) (fsapi.Stat, error) { return m.inner.Lstat(path) }
func (m *mappedClient) Mkdir(path string, perm uint32) error  { return m.inner.Mkdir(path, perm) }
func (m *mappedClient) Rmdir(path string) error               { return m.inner.Rmdir(path) }
func (m *mappedClient) Unlink(path string) error              { return m.inner.Unlink(path) }
func (m *mappedClient) Rename(o, p string) error              { return m.inner.Rename(o, p) }
func (m *mappedClient) Symlink(t, l string) error             { return m.inner.Symlink(t, l) }
func (m *mappedClient) Link(o, p string) error                { return m.inner.Link(o, p) }
func (m *mappedClient) Readlink(path string) (string, error)  { return m.inner.Readlink(path) }
func (m *mappedClient) ReadDir(path string) ([]fsapi.DirEntry, error) {
	return m.inner.ReadDir(path)
}
func (m *mappedClient) Chmod(path string, perm uint32) error { return m.inner.Chmod(path, perm) }
func (m *mappedClient) Utimes(path string, a, mt int64) error {
	return m.inner.Utimes(path, a, mt)
}
func (m *mappedClient) Detach() error { return m.inner.Detach() }
