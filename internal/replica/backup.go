package replica

import (
	"fmt"
	"net"
	"sync"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/wire"
)

// runBackup is the backup's life: join the primary, restore its snapshot,
// apply its log, and watch its heartbeats. When the link dies it retries;
// when the primary stays silent past FailoverGrace (and AutoPromote is on)
// it promotes itself and exits — the node serves as primary from then on.
func (n *Node) runBackup() {
	defer n.wg.Done()
	lastContact := time.Now()
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		if n.Role() == RolePrimary {
			return
		}
		err := n.followPrimary(&lastContact)
		if n.Role() == RolePrimary {
			return
		}
		select {
		case <-n.stop:
			return
		default:
		}
		if err != nil {
			n.cfg.Logf("replica: replication link: %v", err)
		}
		if n.cfg.AutoPromote && time.Since(lastContact) > n.cfg.FailoverGrace {
			if _, perr := n.Promote(); perr != nil {
				n.cfg.Logf("replica: auto-promotion failed: %v", perr)
				// Never joined successfully; keep trying to find a primary.
				lastContact = time.Now()
			} else {
				return
			}
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-n.stop:
			return
		}
	}
}

// followPrimary performs one join: handshake, snapshot restore, then the
// apply loop until the connection dies or the node is promoted/closed.
// lastContact is advanced on every frame from the primary.
func (n *Node) followPrimary(lastContact *time.Time) error {
	addr, _ := n.primaryAddr.Load().(string)
	if addr == "" {
		addr = n.cfg.PrimaryAddr
	}
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return err
	}
	n.joinConn.Store(conn)
	defer conn.Close()

	j := wire.Join{Epoch: n.Epoch(), Addr: n.cfg.Advertise}
	conn.SetDeadline(time.Now().Add(n.cfg.DialTimeout))
	if err := wire.WriteFrame(conn, wire.KindJoin, wire.AppendJoin(nil, &j)); err != nil {
		return err
	}
	fr := wire.NewFrameReader(conn)
	// The snapshot can be large; give the whole transfer a generous but
	// bounded window before the per-frame grace deadline takes over.
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	kind, payload, err := fr.Next()
	if err != nil {
		return err
	}
	switch kind {
	case wire.KindJoinOK:
	case wire.KindErr:
		return wire.ParseErrFrame(payload)
	default:
		return fmt.Errorf("%w: unexpected kind %d joining", wire.ErrBadMessage, kind)
	}
	jo, err := wire.ParseJoinOK(payload)
	if err != nil {
		return err
	}
	img := make([]byte, 0, jo.SnapSize)
	for uint64(len(img)) < jo.SnapSize {
		kind, payload, err := fr.Next()
		if err != nil {
			return err
		}
		if kind != wire.KindSnapChunk {
			return fmt.Errorf("%w: unexpected kind %d in snapshot", wire.ErrBadMessage, kind)
		}
		c, err := wire.ParseSnapChunk(payload)
		if err != nil {
			return err
		}
		if c.Off != uint64(len(img)) {
			return fmt.Errorf("%w: snapshot chunk at %d, want %d", wire.ErrBadMessage, c.Off, len(img))
		}
		img = append(img, c.Data...)
	}
	fs, err := n.cfg.Restore(img)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}

	// Install the restored volume and rebuild the session table from the
	// manifest. Sessions that existed before the snapshot get shadows with
	// the right credentials but empty descriptor tables: descriptors they
	// opened before this backup joined cannot be transferred, and their
	// replayed operations are skipped (counted, and documented — join
	// backups at daemon start for full coverage).
	n.mu.Lock()
	if n.closed || Role(n.role.Load()) == RolePrimary {
		n.mu.Unlock()
		return nil
	}
	n.fs = fs
	n.seq = jo.SnapSeq
	n.epoch.Store(jo.Epoch)
	n.sessions = make(map[uint64]*session, len(jo.Sessions))
	for _, si := range jo.Sessions {
		client, err := fs.Attach(si.Cred)
		if err != nil {
			n.mu.Unlock()
			return fmt.Errorf("manifest attach: %w", err)
		}
		n.sessions[si.Sess] = newSession(si.Sess, si.Cred, client)
	}
	n.mu.Unlock()
	*lastContact = time.Now()
	n.cfg.Logf("replica: joined %s at epoch %d, seq %d (%d MiB snapshot, %d sessions)",
		addr, jo.Epoch, jo.SnapSeq, len(img)>>20, len(jo.Sessions))

	// ents is reused across frames: the entries alias each frame's buffer
	// and every entry is applied before the next fr.Next() invalidates it,
	// so the steady-state apply loop allocates nothing. Acks are cumulative
	// (highest applied seq); in the pipelined default a dedicated acker
	// goroutine sends them, coalescing every frame applied while a previous
	// ack write was in flight into one RepAck — the apply loop never blocks
	// on the socket. wmu serializes its writes with heartbeat echoes.
	var ents []wire.Entry
	var ackBuf []byte
	var wmu sync.Mutex
	var ackKick chan struct{}
	ackerDone := make(chan struct{})
	if n.cfg.Lockstep {
		close(ackerDone)
	} else {
		ackKick = make(chan struct{}, 1)
		go n.runAcker(conn, &wmu, ackKick, ackerDone)
		defer func() {
			conn.Close() // unblock an in-flight ack write
			close(ackKick)
			<-ackerDone
		}()
	}
	// Liveness is enforced on reads alone: the per-frame grace deadline
	// below must not bound writes, or the async acker (which writes at
	// arbitrary points, unlike the old inline ack that always followed a
	// fresh deadline) trips a stale write deadline and tears the link down.
	conn.SetWriteDeadline(time.Time{})
	for {
		conn.SetReadDeadline(time.Now().Add(n.cfg.FailoverGrace))
		kind, payload, err := fr.Next()
		if err != nil {
			return err
		}
		*lastContact = time.Now()
		switch kind {
		case wire.KindReplicate, wire.KindReplicateTraced:
			// A traced frame carries the sampled operation's trace ID as a
			// prefix; the apply and the covering ack become spans in it.
			var trace uint64
			if kind == wire.KindReplicateTraced {
				trace, payload, err = wire.SplitTraceCtx(payload)
				if err != nil {
					return err
				}
			}
			ents, err = wire.DecodeEntriesInto(ents[:0], payload)
			if err != nil {
				return err
			}
			var applyStart time.Time
			if trace != 0 {
				applyStart = time.Now()
			}
			if err := n.applyEntries(ents); err != nil {
				return err
			}
			if trace != 0 {
				n.cfg.Obs.SpanCtx(obs.SpanRepApply, 0, trace, applyStart,
					uint64(time.Since(applyStart)), false)
				n.noteTracedApply(trace, n.Seq())
			}
			if n.cfg.Lockstep {
				a := wire.RepAck{Epoch: n.Epoch(), Seq: n.Seq()}
				ackBuf = wire.AppendRepAck(ackBuf[:0], &a)
				if err := wire.WriteFrame(conn, wire.KindRepAck, ackBuf); err != nil {
					return err
				}
				n.emitAckSpan(a.Seq)
				continue
			}
			select {
			case ackKick <- struct{}{}:
			default: // the acker is already due to run; it reads the latest seq
			}
		case wire.KindHeartbeat:
			h, err := wire.ParseHeartbeat(payload)
			if err != nil {
				return err
			}
			n.m.primarySeq.Store(h.Seq)
			// Echo verbatim so the primary can measure the round trip.
			wmu.Lock()
			err = wire.WriteFrame(conn, wire.KindHeartbeat, payload)
			wmu.Unlock()
			if err != nil {
				return err
			}
		case wire.KindErr:
			return wire.ParseErrFrame(payload)
		default:
			return fmt.Errorf("%w: unexpected kind %d on replication link", wire.ErrBadMessage, kind)
		}
	}
}

// runAcker streams cumulative applied-seq acknowledgments to the primary.
// Each kick means "the applied seq advanced"; the acker reads the latest
// value, so any number of frames applied during one ack write collapse
// into the next ack. Exits when the kick channel closes or a write fails.
func (n *Node) runAcker(conn net.Conn, wmu *sync.Mutex, kick <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	var buf []byte
	var lastSent uint64
	for range kick {
		seq := n.Seq()
		if seq <= lastSent {
			continue
		}
		a := wire.RepAck{Epoch: n.Epoch(), Seq: seq}
		buf = wire.AppendRepAck(buf[:0], &a)
		wmu.Lock()
		err := wire.WriteFrame(conn, wire.KindRepAck, buf)
		wmu.Unlock()
		if err != nil {
			return
		}
		n.emitAckSpan(seq)
		lastSent = seq
	}
}

// minParallelRun is the smallest run of compact pwrite entries worth
// fanning out to the apply workers; below it the dispatch overhead beats
// the parallelism.
const minParallelRun = 16

// applyEntries replays a shipped batch under the log lock. Runs of
// compact pwrite entries — the hot shape of a write-heavy log — apply in
// parallel, partitioned by target inode so same-file writes keep log
// order while independent files proceed concurrently; everything
// ordering-sensitive (attach, open/create/close, namespace mutations,
// detach) applies single-threaded in sequence, acting as a barrier
// between runs. The log lock is held across the whole frame, so
// promotion and metrics never observe a half-applied batch.
func (n *Node) applyEntries(ents []wire.Entry) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || Role(n.role.Load()) == RolePrimary {
		return nil
	}
	for i := range ents {
		if ents[i].Seq != n.seq+uint64(i)+1 {
			return fmt.Errorf("%w: log gap: entry %d after %d", wire.ErrBadMessage,
				ents[i].Seq, n.seq+uint64(i))
		}
	}
	parallel := !n.cfg.Lockstep && n.cfg.ApplyWorkers > 1
	i := 0
	for i < len(ents) {
		if parallel && ents[i].Kind == wire.EntryPwrite {
			j := i + 1
			for j < len(ents) && ents[j].Kind == wire.EntryPwrite {
				j++
			}
			n.applyRunLocked(ents[i:j])
			n.seq = ents[j-1].Seq
			i = j
			continue
		}
		n.applyEntry(&ents[i])
		n.seq = ents[i].Seq
		i++
	}
	return nil
}

// applyRunLocked applies one run of compact pwrite entries, fanning out
// to short-lived workers keyed by inode. Caller holds the log lock; the
// workers touch only inode-disjoint file data, per-session descriptor
// tables (RWMutex), and dedup caches (dmu), none of which need it.
func (n *Node) applyRunLocked(run []wire.Entry) {
	w := n.cfg.ApplyWorkers
	if len(run) < minParallelRun || w <= 1 {
		for i := range run {
			n.applyEntry(&run[i])
		}
		return
	}
	if n.applyParts == nil {
		n.applyParts = make([][]*wire.Entry, w)
	}
	parts := n.applyParts
	for i := range parts {
		parts[i] = parts[i][:0]
	}
	for i := range run {
		e := &run[i]
		var key uint64
		if sess := n.sessions[e.Sess]; sess != nil {
			_, key, _ = sess.lookupVFDIno(e.Req.FD)
		}
		b := (key * 0x9e3779b97f4a7c15) >> 32 % uint64(w)
		parts[b] = append(parts[b], e)
	}
	var wg sync.WaitGroup
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		wg.Add(1)
		go func(p []*wire.Entry) {
			defer wg.Done()
			for _, e := range p {
				n.applyEntry(e)
			}
		}(p)
	}
	wg.Wait()
	n.m.applyParallel.Add(uint64(len(run)))
}

// applyEntry replays one entry against its session's shadow. The caller
// holds the log lock, either directly or as the dispatcher of a parallel
// run (whose workers only ever receive EntryPwrite — the branches that
// mutate n.sessions or the descriptor table are unreachable for them).
func (n *Node) applyEntry(e *wire.Entry) {
	if hook := n.cfg.ApplyHook; hook != nil {
		hook(e)
	}
	defer n.m.entriesApplied.Add(1)
	switch e.Kind {
	case wire.EntryAttach:
		client, err := n.fs.Attach(e.Cred)
		if err != nil {
			n.cfg.Logf("replica: shadow attach for session %x failed: %v", e.Sess, err)
			n.m.replaySkipped.Add(1)
			return
		}
		n.sessions[e.Sess] = newSession(e.Sess, e.Cred, client)
	case wire.EntryOp, wire.EntryPwrite:
		sess := n.sessions[e.Sess]
		if sess == nil {
			n.m.replaySkipped.Add(1)
			return
		}
		req := e.Req
		vfd := req.FD
		if req.Op == wire.OpCreate || req.Op == wire.OpOpen {
			if _, ok := sess.lookupVFD(e.ResFD); ok {
				// The descriptor is already live here: this is a migration-time
				// re-export of an open this backup replayed normally (the
				// primary never reuses live virtual descriptors, so a genuine
				// new open cannot collide). Nothing to do.
				return
			}
		}
		if opUsesFD(req.Op) {
			lfd, ok := sess.lookupVFD(vfd)
			if !ok {
				// A descriptor opened before this backup joined: its state
				// never transferred, so the operation cannot replay here.
				// (Migrations close this gap by re-exporting the descriptor
				// table into the log before the handoff drain.)
				n.m.replaySkipped.Add(1)
				return
			}
			req.FD = lfd
		}
		resp := wire.Execute(sess.client, &req)
		switch {
		case (req.Op == wire.OpCreate || req.Op == wire.OpOpen) && resp.Code == wire.CodeOK:
			oi := openInfo{path: req.Path, flags: fsapi.ORdwr, perm: req.Perm}
			if req.Op == wire.OpOpen {
				oi.flags = sanitizeOpenFlags(fsapi.OpenFlag(req.Flags))
			}
			sess.mapVFD(e.ResFD, resp.FD, inoOf(sess.client, resp.FD), oi)
			resp.FD = e.ResFD // cache the client-visible (virtual) descriptor
		case req.Op == wire.OpClose && resp.Code == wire.CodeOK:
			sess.unmapVFD(vfd)
		case req.Op == wire.OpDetach && resp.Code == wire.CodeOK:
			delete(n.sessions, e.Sess)
			return // nothing left to cache against
		}
		if resp.Code != wire.CodeOK {
			// The primary only ships successes; a failure here means the
			// replicas diverged (or the descriptor was skipped above).
			n.m.replayErrors.Add(1)
			n.cfg.Logf("replica: replay of seq %d (%v) failed: %s", e.Seq, req.Op, resp.Msg)
		}
		sess.dmu.Lock()
		sess.cacheResp(req.ID, resp, e.Seq)
		sess.dmu.Unlock()
	}
}

// opUsesFD reports whether the request's FD field names a descriptor (and
// so needs translation on replay).
func opUsesFD(op wire.Op) bool {
	switch op {
	case wire.OpClose, wire.OpRead, wire.OpPread, wire.OpWrite, wire.OpPwrite,
		wire.OpSeek, wire.OpFsync, wire.OpFtruncate, wire.OpFallocate, wire.OpFstat:
		return true
	}
	return false
}
