package replica

import (
	"fmt"
	"net"
	"time"

	"simurgh/internal/wire"
)

// runBackup is the backup's life: join the primary, restore its snapshot,
// apply its log, and watch its heartbeats. When the link dies it retries;
// when the primary stays silent past FailoverGrace (and AutoPromote is on)
// it promotes itself and exits — the node serves as primary from then on.
func (n *Node) runBackup() {
	defer n.wg.Done()
	lastContact := time.Now()
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		if n.Role() == RolePrimary {
			return
		}
		err := n.followPrimary(&lastContact)
		if n.Role() == RolePrimary {
			return
		}
		select {
		case <-n.stop:
			return
		default:
		}
		if err != nil {
			n.cfg.Logf("replica: replication link: %v", err)
		}
		if n.cfg.AutoPromote && time.Since(lastContact) > n.cfg.FailoverGrace {
			if _, perr := n.Promote(); perr != nil {
				n.cfg.Logf("replica: auto-promotion failed: %v", perr)
				// Never joined successfully; keep trying to find a primary.
				lastContact = time.Now()
			} else {
				return
			}
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-n.stop:
			return
		}
	}
}

// followPrimary performs one join: handshake, snapshot restore, then the
// apply loop until the connection dies or the node is promoted/closed.
// lastContact is advanced on every frame from the primary.
func (n *Node) followPrimary(lastContact *time.Time) error {
	addr, _ := n.primaryAddr.Load().(string)
	if addr == "" {
		addr = n.cfg.PrimaryAddr
	}
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return err
	}
	n.joinConn.Store(conn)
	defer conn.Close()

	j := wire.Join{Epoch: n.Epoch(), Addr: n.cfg.Advertise}
	conn.SetDeadline(time.Now().Add(n.cfg.DialTimeout))
	if err := wire.WriteFrame(conn, wire.KindJoin, wire.AppendJoin(nil, &j)); err != nil {
		return err
	}
	fr := wire.NewFrameReader(conn)
	// The snapshot can be large; give the whole transfer a generous but
	// bounded window before the per-frame grace deadline takes over.
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	kind, payload, err := fr.Next()
	if err != nil {
		return err
	}
	switch kind {
	case wire.KindJoinOK:
	case wire.KindErr:
		return wire.ParseErrFrame(payload)
	default:
		return fmt.Errorf("%w: unexpected kind %d joining", wire.ErrBadMessage, kind)
	}
	jo, err := wire.ParseJoinOK(payload)
	if err != nil {
		return err
	}
	img := make([]byte, 0, jo.SnapSize)
	for uint64(len(img)) < jo.SnapSize {
		kind, payload, err := fr.Next()
		if err != nil {
			return err
		}
		if kind != wire.KindSnapChunk {
			return fmt.Errorf("%w: unexpected kind %d in snapshot", wire.ErrBadMessage, kind)
		}
		c, err := wire.ParseSnapChunk(payload)
		if err != nil {
			return err
		}
		if c.Off != uint64(len(img)) {
			return fmt.Errorf("%w: snapshot chunk at %d, want %d", wire.ErrBadMessage, c.Off, len(img))
		}
		img = append(img, c.Data...)
	}
	fs, err := n.cfg.Restore(img)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}

	// Install the restored volume and rebuild the session table from the
	// manifest. Sessions that existed before the snapshot get shadows with
	// the right credentials but empty descriptor tables: descriptors they
	// opened before this backup joined cannot be transferred, and their
	// replayed operations are skipped (counted, and documented — join
	// backups at daemon start for full coverage).
	n.mu.Lock()
	if n.closed || Role(n.role.Load()) == RolePrimary {
		n.mu.Unlock()
		return nil
	}
	n.fs = fs
	n.seq = jo.SnapSeq
	n.epoch.Store(jo.Epoch)
	n.sessions = make(map[uint64]*session, len(jo.Sessions))
	for _, si := range jo.Sessions {
		client, err := fs.Attach(si.Cred)
		if err != nil {
			n.mu.Unlock()
			return fmt.Errorf("manifest attach: %w", err)
		}
		n.sessions[si.Sess] = newSession(si.Sess, si.Cred, client)
	}
	n.mu.Unlock()
	*lastContact = time.Now()
	n.cfg.Logf("replica: joined %s at epoch %d, seq %d (%d MiB snapshot, %d sessions)",
		addr, jo.Epoch, jo.SnapSeq, len(img)>>20, len(jo.Sessions))

	// ents and ackBuf are reused across frames: the entries alias each
	// frame's buffer and every entry is applied before the next fr.Next()
	// invalidates it, so the steady-state apply loop allocates nothing.
	var ents []wire.Entry
	var ackBuf []byte
	for {
		conn.SetDeadline(time.Now().Add(n.cfg.FailoverGrace))
		kind, payload, err := fr.Next()
		if err != nil {
			return err
		}
		*lastContact = time.Now()
		switch kind {
		case wire.KindReplicate:
			ents, err = wire.DecodeEntriesInto(ents[:0], payload)
			if err != nil {
				return err
			}
			if err := n.applyEntries(ents); err != nil {
				return err
			}
			a := wire.RepAck{Epoch: n.Epoch(), Seq: n.Seq()}
			ackBuf = wire.AppendRepAck(ackBuf[:0], &a)
			if err := wire.WriteFrame(conn, wire.KindRepAck, ackBuf); err != nil {
				return err
			}
		case wire.KindHeartbeat:
			h, err := wire.ParseHeartbeat(payload)
			if err != nil {
				return err
			}
			n.m.primarySeq.Store(h.Seq)
			// Echo verbatim so the primary can measure the round trip.
			if err := wire.WriteFrame(conn, wire.KindHeartbeat, payload); err != nil {
				return err
			}
		case wire.KindErr:
			return wire.ParseErrFrame(payload)
		default:
			return fmt.Errorf("%w: unexpected kind %d on replication link", wire.ErrBadMessage, kind)
		}
	}
}

// applyEntries replays a shipped batch under the log lock.
func (n *Node) applyEntries(ents []wire.Entry) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || Role(n.role.Load()) == RolePrimary {
		return nil
	}
	for i := range ents {
		e := &ents[i]
		if e.Seq != n.seq+1 {
			return fmt.Errorf("%w: log gap: entry %d after %d", wire.ErrBadMessage, e.Seq, n.seq)
		}
		n.applyEntryLocked(e)
		n.seq = e.Seq
		n.m.entriesApplied.Add(1)
	}
	return nil
}

// applyEntryLocked replays one entry against its session's shadow. Caller
// holds the log lock.
func (n *Node) applyEntryLocked(e *wire.Entry) {
	switch e.Kind {
	case wire.EntryAttach:
		client, err := n.fs.Attach(e.Cred)
		if err != nil {
			n.cfg.Logf("replica: shadow attach for session %x failed: %v", e.Sess, err)
			n.m.replaySkipped.Add(1)
			return
		}
		n.sessions[e.Sess] = newSession(e.Sess, e.Cred, client)
	case wire.EntryOp:
		sess := n.sessions[e.Sess]
		if sess == nil {
			n.m.replaySkipped.Add(1)
			return
		}
		req := e.Req
		vfd := req.FD
		if opUsesFD(req.Op) {
			lfd, ok := sess.lookupVFD(vfd)
			if !ok {
				// A descriptor opened before this backup joined: its state
				// never transferred, so the operation cannot replay here.
				n.m.replaySkipped.Add(1)
				return
			}
			req.FD = lfd
		}
		resp := wire.Execute(sess.client, &req)
		switch {
		case (req.Op == wire.OpCreate || req.Op == wire.OpOpen) && resp.Code == wire.CodeOK:
			sess.mapVFD(e.ResFD, resp.FD)
			resp.FD = e.ResFD // cache the client-visible (virtual) descriptor
		case req.Op == wire.OpClose && resp.Code == wire.CodeOK:
			sess.unmapVFD(vfd)
		case req.Op == wire.OpDetach && resp.Code == wire.CodeOK:
			delete(n.sessions, e.Sess)
			return // nothing left to cache against
		}
		if resp.Code != wire.CodeOK {
			// The primary only ships successes; a failure here means the
			// replicas diverged (or the descriptor was skipped above).
			n.m.replayErrors.Add(1)
			n.cfg.Logf("replica: replay of seq %d (%v) failed: %s", e.Seq, req.Op, resp.Msg)
		}
		sess.cacheResp(req.ID, resp, e.Seq)
	}
}

// opUsesFD reports whether the request's FD field names a descriptor (and
// so needs translation on replay).
func opUsesFD(op wire.Op) bool {
	switch op {
	case wire.OpClose, wire.OpRead, wire.OpPread, wire.OpWrite, wire.OpPwrite,
		wire.OpSeek, wire.OpFsync, wire.OpFtruncate, wire.OpFallocate, wire.OpFstat:
		return true
	}
	return false
}
