package replica_test

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
	"simurgh/internal/replica"
	"simurgh/internal/server"
	"simurgh/internal/wire"
	"simurgh/internal/wire/client"
)

// The node must satisfy the server's replication hook surface. The
// assertion lives in a test so the replica package itself never imports
// the server.
var _ server.Replica = (*replica.Node)(nil)

// member is one group node under test: its replica state, wire server,
// and listen address.
type member struct {
	n    *replica.Node
	srv  *server.Server
	addr string
}

func repConfig() replica.Config {
	return replica.Config{
		Quorum:            1,
		HeartbeatInterval: 25 * time.Millisecond,
		FailoverGrace:     300 * time.Millisecond,
	}
}

// startPrimary formats a fresh volume and serves it as a founding primary.
// The device is small on purpose: each join snapshots the whole of it under
// the log lock, and under -race on one CPU a large cut starves heartbeats
// long enough to flap every established link.
func startPrimary(t *testing.T, cfg replica.Config) *member {
	t.Helper()
	dev := pmem.New(16 << 20)
	vol, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Advertise = ln.Addr().String()
	cfg.Snapshot = func(w io.Writer) error {
		_, err := dev.WriteTo(w)
		return err
	}
	n := replica.NewPrimary(vol, cfg)
	srv, err := server.New(server.Config{FS: vol, Replica: n})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	m := &member{n: n, srv: srv, addr: ln.Addr().String()}
	t.Cleanup(func() { m.srv.Abort(); m.n.Close() })
	return m
}

// startBackup serves a backup that joins primaryAddr.
func startBackup(t *testing.T, cfg replica.Config, primaryAddr string) *member {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Advertise = ln.Addr().String()
	cfg.PrimaryAddr = primaryAddr
	cfg.Restore = func(img []byte) (fsapi.FileSystem, error) {
		d, err := pmem.ReadImage(bytes.NewReader(img))
		if err != nil {
			return nil, err
		}
		fs, _, err := core.Mount(d, core.Options{})
		return fs, err
	}
	n := replica.NewBackup(cfg)
	srv, err := server.New(server.Config{Replica: n})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	m := &member{n: n, srv: srv, addr: ln.Addr().String()}
	t.Cleanup(func() { m.srv.Abort(); m.n.Close() })
	return m
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	// Generous: under -race on one CPU a concurrent pair of snapshot joins
	// alone can take tens of seconds.
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func writeFile(t *testing.T, c fsapi.Client, path, content string) {
	t.Helper()
	fd, err := c.Create(path, 0o644)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := c.Write(fd, []byte(content)); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func readFile(t *testing.T, c fsapi.Client, path string) string {
	t.Helper()
	fd, err := c.Open(path, fsapi.ORdonly, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer c.Close(fd)
	buf := make([]byte, 1<<16)
	n, err := c.Pread(fd, buf, 0)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(buf[:n])
}

// TestJoinReplayPromote walks the full backup lifecycle: snapshot install
// (state written before the join), live log replay (state written after),
// explicit promotion over the wire, and serving the merged state.
func TestJoinReplayPromote(t *testing.T) {
	p := startPrimary(t, repConfig())

	remote, err := client.Dial(p.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, c, "/pre", "before the backup joined")

	b := startBackup(t, repConfig(), p.addr)
	waitFor(t, "backup to join", func() bool { return p.n.Backups() == 1 })

	writeFile(t, c, "/post", "after the backup joined")
	waitFor(t, "backup to catch up", func() bool { return b.n.Seq() == p.n.Seq() })
	c.Detach()

	epoch, err := client.Promote(b.addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	if b.n.Role() != replica.RolePrimary {
		t.Fatalf("backup role after promote = %v", b.n.Role())
	}
	if b.n.Health() != "serving" {
		t.Fatalf("promoted health = %q", b.n.Health())
	}

	// The promoted node serves both the snapshot and the replayed state.
	remote2, err := client.Dial(b.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote2.Close()
	c2, err := remote2.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Detach()
	if got := readFile(t, c2, "/pre"); got != "before the backup joined" {
		t.Fatalf("/pre = %q", got)
	}
	if got := readFile(t, c2, "/post"); got != "after the backup joined" {
		t.Fatalf("/post = %q", got)
	}
	writeFile(t, c2, "/after-promote", "writable")
}

// TestBackupRedirects verifies a client that dials the backup is
// redirected to the primary transparently.
func TestBackupRedirects(t *testing.T) {
	p := startPrimary(t, repConfig())
	b := startBackup(t, repConfig(), p.addr)
	waitFor(t, "backup to join", func() bool { return p.n.Backups() == 1 })

	if b.n.Health() != "backup" {
		t.Fatalf("backup health = %q", b.n.Health())
	}

	remote, err := client.Dial(b.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatalf("attach via backup: %v", err)
	}
	defer c.Detach()
	writeFile(t, c, "/via-redirect", "landed on the primary")
	if remote.Stats().Redirects == 0 {
		t.Fatal("no redirect counted")
	}
	// The write really happened on the primary's volume.
	waitFor(t, "redirect write to replicate", func() bool { return b.n.Seq() == p.n.Seq() })
}

// TestAutoPromote kills the primary outright and expects the backup to
// notice the silence, promote itself, and serve the replicated state.
func TestAutoPromote(t *testing.T) {
	cfg := repConfig()
	cfg.AutoPromote = true
	p := startPrimary(t, cfg)

	remote, err := client.Dial(p.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, c, "/survivor", "must outlive the primary")

	b := startBackup(t, cfg, p.addr)
	waitFor(t, "backup to join", func() bool { return p.n.Backups() == 1 })
	waitFor(t, "backup to catch up", func() bool { return b.n.Seq() == p.n.Seq() })
	remote.Close()

	p.srv.Abort()
	p.n.Close()

	waitFor(t, "auto promotion", func() bool { return b.n.Role() == replica.RolePrimary })
	if b.n.Epoch() != 2 {
		t.Fatalf("epoch after auto promote = %d, want 2", b.n.Epoch())
	}

	remote2, err := client.Dial(b.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote2.Close()
	c2, err := remote2.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Detach()
	if got := readFile(t, c2, "/survivor"); got != "must outlive the primary" {
		t.Fatalf("/survivor = %q", got)
	}
}

// TestApplyDedup drives the replay cache directly: a duplicate request ID
// (a client replaying after failover) must not re-execute, and must get
// the original response and sequence back — including for failed
// operations, which are cached but never logged.
func TestApplyDedup(t *testing.T) {
	dev := pmem.New(64 << 20)
	vol, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := replica.NewPrimary(vol, replica.Config{})
	defer n.Close()

	c, sessID, _, err := n.AttachClient(fsapi.Root, 0xcafe)
	if err != nil {
		t.Fatal(err)
	}

	execs := 0
	req := wire.Request{ID: 5, Op: wire.OpMkdir, Path: "/d", Perm: 0o755}
	exec := func() wire.Response {
		execs++
		return wire.Execute(c, &req)
	}
	resp1, seq1 := n.Apply(sessID, &req, 0, exec)
	if resp1.Code != 0 {
		t.Fatalf("mkdir failed: %v", resp1.Code)
	}
	if seq1 == 0 {
		t.Fatal("successful mutation got no sequence")
	}
	resp2, seq2 := n.Apply(sessID, &req, 0, exec)
	if execs != 1 {
		t.Fatalf("duplicate request executed %d times", execs)
	}
	if resp2.Code != resp1.Code || seq2 != seq1 {
		t.Fatalf("replay answer = (%v, %d), want (%v, %d)", resp2.Code, seq2, resp1.Code, seq1)
	}

	// A failing op mutates nothing and must not consume a sequence, but
	// its replay still answers from cache.
	failReq := wire.Request{ID: 6, Op: wire.OpMkdir, Path: "/d", Perm: 0o755}
	failExec := func() wire.Response {
		execs++
		return wire.Execute(c, &failReq)
	}
	resp3, seq3 := n.Apply(sessID, &failReq, 0, failExec)
	if resp3.Code == 0 || seq3 != 0 {
		t.Fatalf("second mkdir = (%v, %d), want error with no sequence", resp3.Code, seq3)
	}
	before := execs
	resp4, _ := n.Apply(sessID, &failReq, 0, failExec)
	if execs != before || resp4.Code != resp3.Code {
		t.Fatalf("failed-op replay re-executed (execs %d→%d, code %v)", before, execs, resp4.Code)
	}
}

// TestAttachResume verifies session resumption by client ID: same ID and
// credentials resumes the session; same ID with different credentials is
// refused.
func TestAttachResume(t *testing.T) {
	dev := pmem.New(64 << 20)
	vol, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := replica.NewPrimary(vol, replica.Config{})
	defer n.Close()

	_, sess1, _, err := n.AttachClient(fsapi.Cred{UID: 1000, GID: 1000}, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	_, sess2, _, err := n.AttachClient(fsapi.Cred{UID: 1000, GID: 1000}, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	if sess1 != sess2 {
		t.Fatalf("resume allocated a new session: %d vs %d", sess1, sess2)
	}
	if _, _, _, err := n.AttachClient(fsapi.Cred{UID: 1001, GID: 1001}, 0xbeef); err == nil {
		t.Fatal("credential mismatch on resume was accepted")
	}
}

// TestMetricsOutput checks the exported gauge/counter names the CI smoke
// job greps for.
func TestMetricsOutput(t *testing.T) {
	p := startPrimary(t, repConfig())
	b := startBackup(t, repConfig(), p.addr)
	waitFor(t, "backup to join", func() bool { return p.n.Backups() == 1 })

	var buf bytes.Buffer
	p.n.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"simurgh_replica_role", "simurgh_replica_epoch", "simurgh_replica_seq",
		"simurgh_replica_lag_ops", "simurgh_replica_lag_bytes", "simurgh_replica_backups 1",
		"simurgh_replica_ack_window", "simurgh_replica_ship_lag_entries",
		"simurgh_replica_frames_shipped_total", "simurgh_replica_apply_parallel_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("primary metrics missing %q", want)
		}
	}
	buf.Reset()
	b.n.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), `role="backup"`) {
		t.Errorf("backup metrics missing backup role label:\n%s", buf.String())
	}
}
