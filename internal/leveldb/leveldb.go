// Package leveldb is a compact LevelDB-style LSM key-value store written
// against the fsapi interface. It exists because the paper's YCSB
// experiments run LevelDB on top of each file system; what matters for the
// reproduction is the I/O shape LevelDB induces — write-ahead-log appends
// with fsyncs on every update, periodic SSTable creation (large sequential
// writes + fsync + rename), table deletion during compaction, and random
// reads of table blocks — all of which this implementation performs for
// real through the file system under test.
//
// Supported operations: Put, Get, Delete, Scan (for YCSB workload E), and
// Close. Durability follows LevelDB's default: the WAL is appended per
// update and synced according to Options.SyncWrites.
package leveldb

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"simurgh/internal/fsapi"
)

// Options tunes the store.
type Options struct {
	// MemtableBytes triggers a flush when the memtable reaches this size.
	MemtableBytes int
	// L0Tables triggers a compaction when this many L0 tables exist.
	L0Tables int
	// SyncWrites fsyncs the WAL on every update (LevelDB sync=true).
	SyncWrites bool
}

func (o *Options) fill() {
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.L0Tables == 0 {
		o.L0Tables = 4
	}
}

// DB is an open store.
type DB struct {
	c    fsapi.Client
	dir  string
	opts Options

	mu       sync.RWMutex
	mem      map[string]entry
	memBytes int
	walFD    fsapi.FD
	walPath  string
	seq      uint64 // next table file number

	l0 []*table // newest first
	l1 *table
}

type entry struct {
	value   string
	deleted bool
}

// table is an open SSTable with its index resident in memory.
type table struct {
	path string
	keys []string // sorted
	offs []uint64 // record offset per key
	fd   fsapi.FD
}

// Open creates or reuses a store in dir (created if missing).
func Open(c fsapi.Client, dir string, opts Options) (*DB, error) {
	opts.fill()
	if _, err := c.Stat(dir); err != nil {
		if err := c.Mkdir(dir, 0o755); err != nil {
			return nil, err
		}
	}
	db := &DB{c: c, dir: dir, opts: opts, mem: make(map[string]entry)}
	if err := db.newWAL(); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) newWAL() error {
	db.walPath = fmt.Sprintf("%s/%06d.log", db.dir, db.seq)
	db.seq++
	fd, err := db.c.Open(db.walPath, fsapi.OCreate|fsapi.OWronly|fsapi.OAppend|fsapi.OTrunc, 0o644)
	if err != nil {
		return err
	}
	db.walFD = fd
	return nil
}

// record encodes one update: flags(1) klen(4) vlen(4) key value.
func appendRecord(buf []byte, key, value string, deleted bool) []byte {
	var hdr [9]byte
	if deleted {
		hdr[0] = 1
	}
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(value)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

// Put inserts or overwrites a key.
func (db *DB) Put(key, value string) error {
	return db.write(key, value, false)
}

// Delete removes a key (via tombstone).
func (db *DB) Delete(key string) error {
	return db.write(key, "", true)
}

func (db *DB) write(key, value string, deleted bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec := appendRecord(nil, key, value, deleted)
	if _, err := db.c.Write(db.walFD, rec); err != nil {
		return err
	}
	if db.opts.SyncWrites {
		if err := db.c.Fsync(db.walFD); err != nil {
			return err
		}
	}
	db.mem[key] = entry{value: value, deleted: deleted}
	db.memBytes += len(rec)
	if db.memBytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// Get returns the value for key. The read lock is held across table reads
// so a concurrent compaction cannot close the table descriptors mid-read.
func (db *DB) Get(key string) (string, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if e, ok := db.mem[key]; ok {
		if e.deleted {
			return "", false, nil
		}
		return e.value, true, nil
	}
	tables := make([]*table, 0, len(db.l0)+1)
	tables = append(tables, db.l0...)
	if db.l1 != nil {
		tables = append(tables, db.l1)
	}
	for _, t := range tables {
		v, del, ok, err := db.tableGet(t, key)
		if err != nil {
			return "", false, err
		}
		if ok {
			if del {
				return "", false, nil
			}
			return v, true, nil
		}
	}
	return "", false, nil
}

// tableGet binary-searches the resident index and reads one record.
func (db *DB) tableGet(t *table, key string) (string, bool, bool, error) {
	i := sort.SearchStrings(t.keys, key)
	if i >= len(t.keys) || t.keys[i] != key {
		return "", false, false, nil
	}
	val, del, err := db.readRecord(t, t.offs[i])
	return val, del, err == nil, err
}

func (db *DB) readRecord(t *table, off uint64) (string, bool, error) {
	var hdr [9]byte
	if _, err := db.c.Pread(t.fd, hdr[:], off); err != nil {
		return "", false, err
	}
	klen := binary.LittleEndian.Uint32(hdr[1:])
	vlen := binary.LittleEndian.Uint32(hdr[5:])
	buf := make([]byte, klen+vlen)
	if _, err := db.c.Pread(t.fd, buf, off+9); err != nil {
		return "", false, err
	}
	return string(buf[klen:]), hdr[0] == 1, nil
}

// Scan returns up to count live key/value pairs with key >= start, in key
// order (YCSB workload E).
func (db *DB) Scan(start string, count int) ([][2]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	// Collect candidates newest-source-first so the first hit per key wins.
	seen := map[string]entry{}
	for k, e := range db.mem {
		if k >= start {
			seen[k] = e
		}
	}
	tables := make([]*table, 0, len(db.l0)+1)
	tables = append(tables, db.l0...)
	if db.l1 != nil {
		tables = append(tables, db.l1)
	}
	for _, t := range tables {
		i := sort.SearchStrings(t.keys, start)
		for j := i; j < len(t.keys) && j < i+count*2; j++ {
			k := t.keys[j]
			if _, ok := seen[k]; ok {
				continue
			}
			v, del, err := db.readRecord(t, t.offs[j])
			if err != nil {
				return nil, err
			}
			seen[k] = entry{value: v, deleted: del}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][2]string, 0, count)
	for _, k := range keys {
		e := seen[k]
		if e.deleted {
			continue
		}
		out = append(out, [2]string{k, e.value})
		if len(out) >= count {
			break
		}
	}
	return out, nil
}

// flushLocked writes the memtable as a new L0 SSTable and resets the WAL.
func (db *DB) flushLocked() error {
	if len(db.mem) == 0 {
		return nil
	}
	keys := make([]string, 0, len(db.mem))
	for k := range db.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make(map[string]entry, len(db.mem))
	for k, v := range db.mem {
		recs[k] = v
	}
	t, err := db.writeTable(keys, func(k string) (string, bool) {
		e := recs[k]
		return e.value, e.deleted
	})
	if err != nil {
		return err
	}
	db.l0 = append([]*table{t}, db.l0...)
	// Retire the WAL and start fresh.
	db.c.Close(db.walFD)
	db.c.Unlink(db.walPath)
	if err := db.newWAL(); err != nil {
		return err
	}
	db.mem = make(map[string]entry)
	db.memBytes = 0
	if len(db.l0) >= db.opts.L0Tables {
		return db.compactLocked()
	}
	return nil
}

// writeTable creates an SSTable file for the sorted keys.
func (db *DB) writeTable(keys []string, val func(string) (string, bool)) (*table, error) {
	path := fmt.Sprintf("%s/%06d.sst", db.dir, db.seq)
	db.seq++
	tmp := path + ".tmp"
	fd, err := db.c.Open(tmp, fsapi.OCreate|fsapi.OWronly|fsapi.OTrunc, 0o644)
	if err != nil {
		return nil, err
	}
	t := &table{path: path, keys: keys}
	var buf []byte
	var off uint64
	for _, k := range keys {
		v, del := val(k)
		t.offs = append(t.offs, off)
		rec := appendRecord(nil, k, v, del)
		buf = append(buf, rec...)
		off += uint64(len(rec))
		if len(buf) >= 1<<20 {
			if _, err := db.c.Write(fd, buf); err != nil {
				return nil, err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := db.c.Write(fd, buf); err != nil {
			return nil, err
		}
	}
	if err := db.c.Fsync(fd); err != nil {
		return nil, err
	}
	db.c.Close(fd)
	// Publish atomically, as LevelDB does via the MANIFEST + rename.
	if err := db.c.Rename(tmp, path); err != nil {
		return nil, err
	}
	if err := db.writeManifest(); err != nil {
		return nil, err
	}
	rfd, err := db.c.Open(path, fsapi.ORdonly, 0)
	if err != nil {
		return nil, err
	}
	t.fd = rfd
	return t, nil
}

// writeManifest records the current table set (create, write, fsync,
// rename — the metadata-heavy part of LevelDB).
func (db *DB) writeManifest() error {
	tmp := db.dir + "/MANIFEST.tmp"
	fd, err := db.c.Open(tmp, fsapi.OCreate|fsapi.OWronly|fsapi.OTrunc, 0o644)
	if err != nil {
		return err
	}
	var sb strings.Builder
	for _, t := range db.l0 {
		sb.WriteString(t.path)
		sb.WriteByte('\n')
	}
	if db.l1 != nil {
		sb.WriteString(db.l1.path)
		sb.WriteByte('\n')
	}
	if _, err := db.c.Write(fd, []byte(sb.String())); err != nil {
		return err
	}
	if err := db.c.Fsync(fd); err != nil {
		return err
	}
	db.c.Close(fd)
	return db.c.Rename(tmp, db.dir+"/MANIFEST")
}

// compactLocked merges all L0 tables and the current L1 into a new L1.
func (db *DB) compactLocked() error {
	sources := append([]*table{}, db.l0...)
	if db.l1 != nil {
		sources = append(sources, db.l1)
	}
	// Newest-first merge: first occurrence of a key wins.
	merged := map[string]entry{}
	var keys []string
	for _, t := range sources {
		for i, k := range t.keys {
			if _, ok := merged[k]; ok {
				continue
			}
			v, del, err := db.readRecord(t, t.offs[i])
			if err != nil {
				return err
			}
			merged[k] = entry{value: v, deleted: del}
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	// Drop tombstones entirely at the bottom level.
	live := keys[:0]
	for _, k := range keys {
		if !merged[k].deleted {
			live = append(live, k)
		}
	}
	nt, err := db.writeTable(live, func(k string) (string, bool) {
		e := merged[k]
		return e.value, false
	})
	if err != nil {
		return err
	}
	for _, t := range sources {
		db.c.Close(t.fd)
		db.c.Unlink(t.path)
	}
	db.l0 = nil
	db.l1 = nt
	return db.writeManifest()
}

// Flush forces the memtable out (used by benchmarks to settle state).
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked()
}

// Close flushes and releases the store.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.flushLocked(); err != nil {
		return err
	}
	db.c.Close(db.walFD)
	db.c.Unlink(db.walPath)
	for _, t := range db.l0 {
		db.c.Close(t.fd)
	}
	if db.l1 != nil {
		db.c.Close(db.l1.fd)
	}
	return nil
}
