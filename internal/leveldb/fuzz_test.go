package leveldb

import (
	"testing"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

// FuzzPutGetDelete drives the store with arbitrary keys and values; every
// accepted write must read back exactly, across flush boundaries.
func FuzzPutGetDelete(f *testing.F) {
	f.Add("key", []byte("value"), false)
	f.Add("", []byte{}, true)
	f.Add("k\x00odd", []byte{0xff, 0x00}, false)
	dev := pmem.New(128 << 20)
	fs, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		f.Fatal(err)
	}
	c, _ := fs.Attach(fsapi.Root)
	db, err := Open(c, "/db", Options{MemtableBytes: 4096})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, key string, value []byte, del bool) {
		if len(key) > 1000 || len(value) > 10000 {
			return
		}
		if del {
			if err := db.Delete(key); err != nil {
				t.Fatalf("delete(%q): %v", key, err)
			}
			if _, ok, err := db.Get(key); err != nil || ok {
				t.Fatalf("deleted key visible: ok=%v err=%v", ok, err)
			}
			return
		}
		if err := db.Put(key, string(value)); err != nil {
			t.Fatalf("put(%q): %v", key, err)
		}
		got, ok, err := db.Get(key)
		if err != nil || !ok {
			t.Fatalf("get(%q) = (%v, %v)", key, ok, err)
		}
		if got != string(value) {
			t.Fatalf("value mismatch for %q: %d vs %d bytes", key, len(got), len(value))
		}
	})
}
