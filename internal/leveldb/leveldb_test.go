package leveldb

import (
	"fmt"
	"math/rand"
	"testing"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

func newDB(t *testing.T, opts Options) *DB {
	t.Helper()
	dev := pmem.New(256 << 20)
	fs, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := fs.Attach(fsapi.Root)
	db, err := Open(c, "/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGet(t *testing.T) {
	db := newDB(t, Options{})
	if err := db.Put("alpha", "1"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get("alpha")
	if err != nil || !ok || v != "1" {
		t.Fatalf("get = (%q, %v, %v)", v, ok, err)
	}
	if _, ok, _ := db.Get("missing"); ok {
		t.Fatal("phantom key")
	}
}

func TestOverwrite(t *testing.T) {
	db := newDB(t, Options{})
	db.Put("k", "old")
	db.Put("k", "new")
	v, ok, _ := db.Get("k")
	if !ok || v != "new" {
		t.Fatalf("get = %q", v)
	}
}

func TestDelete(t *testing.T) {
	db := newDB(t, Options{})
	db.Put("k", "v")
	db.Delete("k")
	if _, ok, _ := db.Get("k"); ok {
		t.Fatal("deleted key visible")
	}
}

func TestFlushAndReadFromTable(t *testing.T) {
	db := newDB(t, Options{MemtableBytes: 1024})
	for i := 0; i < 200; i++ {
		if err := db.Put(fmt.Sprintf("key%04d", i), fmt.Sprintf("val%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Several flushes have happened; all keys must still be readable.
	for i := 0; i < 200; i++ {
		v, ok, err := db.Get(fmt.Sprintf("key%04d", i))
		if err != nil || !ok || v != fmt.Sprintf("val%d", i) {
			t.Fatalf("key%04d = (%q, %v, %v)", i, v, ok, err)
		}
	}
}

func TestCompaction(t *testing.T) {
	db := newDB(t, Options{MemtableBytes: 512, L0Tables: 2})
	for i := 0; i < 500; i++ {
		db.Put(fmt.Sprintf("k%05d", i%100), fmt.Sprintf("gen%d", i))
	}
	if len(db.l0) >= db.opts.L0Tables {
		t.Fatalf("compaction never ran: %d L0 tables", len(db.l0))
	}
	// Latest generation must win for every key.
	for i := 400; i < 500; i++ {
		k := fmt.Sprintf("k%05d", i%100)
		v, ok, err := db.Get(k)
		if err != nil || !ok {
			t.Fatalf("%s = (%v, %v)", k, ok, err)
		}
		if v != fmt.Sprintf("gen%d", i) {
			t.Fatalf("%s = %q, want gen%d", k, v, i)
		}
	}
}

func TestDeleteAcrossCompaction(t *testing.T) {
	db := newDB(t, Options{MemtableBytes: 256, L0Tables: 2})
	for i := 0; i < 50; i++ {
		db.Put(fmt.Sprintf("d%03d", i), "x")
	}
	for i := 0; i < 50; i += 2 {
		db.Delete(fmt.Sprintf("d%03d", i))
	}
	db.Flush()
	for i := 0; i < 50; i++ {
		_, ok, _ := db.Get(fmt.Sprintf("d%03d", i))
		if i%2 == 0 && ok {
			t.Fatalf("deleted d%03d visible", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("live d%03d lost", i)
		}
	}
}

func TestScan(t *testing.T) {
	db := newDB(t, Options{MemtableBytes: 512})
	for i := 0; i < 100; i++ {
		db.Put(fmt.Sprintf("s%04d", i), fmt.Sprintf("v%d", i))
	}
	out, err := db.Scan("s0050", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("scan returned %d", len(out))
	}
	for i, kv := range out {
		want := fmt.Sprintf("s%04d", 50+i)
		if kv[0] != want {
			t.Fatalf("scan[%d] = %q, want %q", i, kv[0], want)
		}
	}
}

func TestScanSkipsDeleted(t *testing.T) {
	db := newDB(t, Options{})
	db.Put("a1", "x")
	db.Put("a2", "y")
	db.Put("a3", "z")
	db.Delete("a2")
	out, _ := db.Scan("a1", 10)
	if len(out) != 2 || out[0][0] != "a1" || out[1][0] != "a3" {
		t.Fatalf("scan = %v", out)
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	db := newDB(t, Options{MemtableBytes: 2048, L0Tables: 3})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("r%03d", rng.Intn(300))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d", i)
			if err := db.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 2:
			if err := db.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		}
	}
	for k, want := range model {
		v, ok, err := db.Get(k)
		if err != nil || !ok || v != want {
			t.Fatalf("%s = (%q, %v, %v), want %q", k, v, ok, err, want)
		}
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("r%03d", i)
		if _, inModel := model[k]; !inModel {
			if _, ok, _ := db.Get(k); ok {
				t.Fatalf("%s should be absent", k)
			}
		}
	}
}

func TestLargeValues(t *testing.T) {
	db := newDB(t, Options{MemtableBytes: 8192})
	big := make([]byte, 16000)
	for i := range big {
		big[i] = byte(i % 251)
	}
	db.Put("big", string(big))
	db.Flush()
	v, ok, err := db.Get("big")
	if err != nil || !ok || v != string(big) {
		t.Fatalf("big value corrupted (ok=%v err=%v len=%d)", ok, err, len(v))
	}
}

func TestSyncWrites(t *testing.T) {
	db := newDB(t, Options{SyncWrites: true})
	for i := 0; i < 50; i++ {
		if err := db.Put(fmt.Sprintf("s%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := db.Get("s25"); !ok {
		t.Fatal("synced write lost")
	}
}

func TestConcurrentReadersDuringCompaction(t *testing.T) {
	// Readers must never observe closed table descriptors while a writer
	// triggers flushes and compactions (regression: Get raced compaction).
	db := newDB(t, Options{MemtableBytes: 512, L0Tables: 2})
	for i := 0; i < 100; i++ {
		db.Put(fmt.Sprintf("w%03d", i), "seed")
	}
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for r := 0; r < 3; r++ {
		go func(r int) {
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				if _, _, err := db.Get(fmt.Sprintf("w%03d", rng.Intn(100))); err != nil {
					errs <- err
					return
				}
				if _, err := db.Scan(fmt.Sprintf("w%03d", rng.Intn(100)), 5); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	for i := 0; i < 2000; i++ {
		if err := db.Put(fmt.Sprintf("w%03d", i%100), fmt.Sprintf("gen%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for r := 0; r < 3; r++ {
		if err := <-errs; err != nil {
			t.Fatalf("reader failed during compaction churn: %v", err)
		}
	}
}

func TestCloseFlushes(t *testing.T) {
	db := newDB(t, Options{})
	db.Put("persist", "me")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
