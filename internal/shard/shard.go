// Package shard partitions the Simurgh namespace across independent
// replica groups. The unit of distribution is the shard: a slice of the
// namespace (a path-prefix subtree, or one bucket of a hash partition for
// flat roots) served in its entirety by one replica group. A small
// epoch-versioned shard map names every shard's owner group; every node
// serves the map over the wire (KindMapGet/KindMapOK), clients route each
// operation by path against a cached copy, and a node answers operations
// for shards it does not serve with CodeMoved/KindMoved so a stale client
// knows to refetch.
//
// The map is the only centralized piece of state — in the spirit of
// KucoFS's trusted-but-slow control plane, it changes rarely (an epoch bump
// per migration), is tiny (a few hundred bytes), and never sits on the data
// path: once a client holds the current epoch it talks straight to owner
// groups with no coordinator in between, preserving the paper's
// decentralized fast path.
//
// Live migration moves one shard to another group without downtime: the
// target joins the owner group as a replication backup (snapshot stream +
// log replay, the PR 5 machinery, plus a descriptor re-export so even
// long-lived sessions transfer), the map's epoch flips with the old owner
// fencing and draining first, and the old group answers Moved while clients
// rehome. See Migrate.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"path"
	"sort"
	"strings"

	"simurgh/internal/wire"
)

// Limits for untrusted map payloads.
const (
	// MaxShards bounds the shards in one map.
	MaxShards = 256
	// MaxAddrs bounds one shard's replica-group address list.
	MaxAddrs = 16
)

// State is a shard's lifecycle state in the map.
type State uint8

const (
	// StateServing is the steady state: the owner group serves the shard.
	StateServing State = 0
	// StateMigrating marks a shard whose ownership is moving; the listed
	// group still serves it, but clients should expect a Moved soon.
	StateMigrating State = 1
)

// String returns the state's display name.
func (s State) String() string {
	switch s {
	case StateServing:
		return "serving"
	case StateMigrating:
		return "migrating"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// MarshalJSON renders the state as its display name.
func (s State) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the display name (or a bare number for forward
// compatibility).
func (s *State) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err == nil {
		switch str {
		case "serving":
			*s = StateServing
		case "migrating":
			*s = StateMigrating
		default:
			return fmt.Errorf("shard: unknown state %q", str)
		}
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*s = State(n)
	return nil
}

// Shard is one namespace slice and the replica group that owns it.
type Shard struct {
	// ID is the shard's stable identity; migrations change a shard's
	// addresses, never its ID.
	ID uint32 `json:"id"`
	// Prefix is the subtree this shard owns ("/", "/warm", ...). The empty
	// string marks a hash-fallback shard: paths matching no prefix shard
	// are bucketed across the hash shards by their first path component.
	Prefix string `json:"prefix"`
	// Addrs lists the owner group's node addresses (primary and backups,
	// in no guaranteed order — clients follow intra-group redirects).
	Addrs []string `json:"addrs"`
	// State is the shard's lifecycle state.
	State State `json:"state"`
}

// Map is the epoch-versioned shard table. Higher epochs strictly supersede
// lower ones; nodes refuse installs that do not advance the epoch and
// clients discard fetched maps older than what they hold.
type Map struct {
	Epoch  uint64  `json:"epoch"`
	Shards []Shard `json:"shards"`
}

// Validate checks structural soundness: at least one shard, unique IDs,
// unique prefixes, rooted clean prefixes, non-empty bounded address lists,
// and total coverage (a "/" shard or at least one hash shard, so every
// path routes somewhere).
func (m *Map) Validate() error {
	if len(m.Shards) == 0 {
		return errors.New("shard: map has no shards")
	}
	if len(m.Shards) > MaxShards {
		return fmt.Errorf("shard: %d shards exceeds %d", len(m.Shards), MaxShards)
	}
	ids := make(map[uint32]bool, len(m.Shards))
	prefixes := make(map[string]bool, len(m.Shards))
	covered := false
	for i := range m.Shards {
		sh := &m.Shards[i]
		if ids[sh.ID] {
			return fmt.Errorf("shard: duplicate shard id %d", sh.ID)
		}
		ids[sh.ID] = true
		if len(sh.Addrs) == 0 {
			return fmt.Errorf("shard %d: no addresses", sh.ID)
		}
		if len(sh.Addrs) > MaxAddrs {
			return fmt.Errorf("shard %d: %d addresses exceeds %d", sh.ID, len(sh.Addrs), MaxAddrs)
		}
		if sh.Prefix == "" {
			covered = true // hash shard: catches everything unmatched
			continue
		}
		if !strings.HasPrefix(sh.Prefix, "/") {
			return fmt.Errorf("shard %d: prefix %q is not rooted", sh.ID, sh.Prefix)
		}
		if cleaned := path.Clean(sh.Prefix); cleaned != sh.Prefix {
			return fmt.Errorf("shard %d: prefix %q is not clean (want %q)", sh.ID, sh.Prefix, cleaned)
		}
		if prefixes[sh.Prefix] {
			return fmt.Errorf("shard: duplicate prefix %q", sh.Prefix)
		}
		prefixes[sh.Prefix] = true
		if sh.Prefix == "/" {
			covered = true
		}
	}
	if !covered {
		return errors.New(`shard: map covers no root (need a "/" prefix shard or a hash shard)`)
	}
	return nil
}

// Clone returns a deep copy safe to mutate independently.
func (m *Map) Clone() *Map {
	out := &Map{Epoch: m.Epoch, Shards: make([]Shard, len(m.Shards))}
	for i := range m.Shards {
		out.Shards[i] = m.Shards[i]
		out.Shards[i].Addrs = append([]string(nil), m.Shards[i].Addrs...)
	}
	return out
}

// ByID returns the shard with the given ID, or nil.
func (m *Map) ByID(id uint32) *Shard {
	for i := range m.Shards {
		if m.Shards[i].ID == id {
			return &m.Shards[i]
		}
	}
	return nil
}

// hashShards returns the hash-fallback members sorted by ID (the bucket
// order every router must agree on).
func (m *Map) hashShards() []*Shard {
	var hs []*Shard
	for i := range m.Shards {
		if m.Shards[i].Prefix == "" {
			hs = append(hs, &m.Shards[i])
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].ID < hs[j].ID })
	return hs
}

// firstComponent extracts the first path component of a cleaned rooted
// path ("/a/b/c" → "a"); empty for "/".
func firstComponent(p string) string {
	p = strings.TrimPrefix(p, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i]
	}
	return p
}

// Route maps a path to its owning shard. Precedence: the longest matching
// non-root prefix wins; otherwise hash shards bucket the path by the FNV-1a
// hash of its first component; otherwise the "/" shard takes it. The root
// path itself goes to the "/" shard when one exists, else to the first hash
// bucket (routers must agree, so the choice is fixed, not hashed). Returns
// nil only on an invalid map (no coverage).
func (m *Map) Route(p string) *Shard {
	p = path.Clean(p)
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	var best *Shard
	var root *Shard
	for i := range m.Shards {
		sh := &m.Shards[i]
		pre := sh.Prefix
		if pre == "" {
			continue
		}
		if pre == "/" {
			root = sh
			continue
		}
		if p == pre || strings.HasPrefix(p, pre+"/") {
			if best == nil || len(pre) > len(best.Prefix) {
				best = sh
			}
		}
	}
	if best != nil {
		return best
	}
	hs := m.hashShards()
	if p == "/" {
		if root != nil {
			return root
		}
		if len(hs) > 0 {
			return hs[0]
		}
		return nil
	}
	if len(hs) > 0 {
		h := fnv.New32a()
		h.Write([]byte(firstComponent(p)))
		return hs[int(h.Sum32())%len(hs)]
	}
	return root
}

// --- binary codec (KindMapOK / KindMapSet payloads) ---------------------

// Encode serializes the map for the wire.
func (m *Map) Encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.Epoch)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Shards)))
	for i := range m.Shards {
		sh := &m.Shards[i]
		b = binary.LittleEndian.AppendUint32(b, sh.ID)
		b = append(b, byte(sh.State))
		b = appendStr16(b, sh.Prefix)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(sh.Addrs)))
		for _, a := range sh.Addrs {
			b = appendStr16(b, a)
		}
	}
	return b
}

func appendStr16(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// Decode parses an encoded map, validating it.
func Decode(b []byte) (*Map, error) {
	d := dec{b: b}
	m := &Map{Epoch: d.u64()}
	n := int(d.u16())
	if n > MaxShards {
		return nil, fmt.Errorf("shard: %d shards exceeds %d", n, MaxShards)
	}
	for i := 0; i < n && d.err == nil; i++ {
		var sh Shard
		sh.ID = d.u32()
		sh.State = State(d.u8())
		sh.Prefix = d.str()
		na := int(d.u16())
		if na > MaxAddrs {
			return nil, fmt.Errorf("shard: %d addresses exceeds %d", na, MaxAddrs)
		}
		for j := 0; j < na && d.err == nil; j++ {
			sh.Addrs = append(sh.Addrs, d.str())
		}
		m.Shards = append(m.Shards, sh)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes in map", len(d.b))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// dec is a poisoning little-endian consumer, mirroring the wire package's
// reader for this package's own payloads.
type dec struct {
	b   []byte
	err error
}

var errTruncatedMap = errors.New("shard: truncated map")

func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.err = errTruncatedMap
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.err = errTruncatedMap
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.err = errTruncatedMap
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.err = errTruncatedMap
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) str() string {
	n := int(d.u16())
	if d.err != nil {
		return ""
	}
	if n > wire.MaxPath {
		d.err = fmt.Errorf("shard: string length %d > %d", n, wire.MaxPath)
		return ""
	}
	if n > len(d.b) {
		d.err = errTruncatedMap
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// --- JSON form (map files, simurghsh display) ---------------------------

// ParseJSON loads a map from its JSON form (the -shard-map file format) and
// validates it.
func ParseJSON(b []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// JSON renders the map in its file form.
func (m *Map) JSON() []byte {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil { // a Map has no unmarshalable fields
		panic(err)
	}
	return append(b, '\n')
}

// SingleNode builds the trivial map for a standalone node: n hash shards
// (n > 1) or one "/" shard, all owned by addr. This is what `simurghd
// -shards N` serves so a sharded client can talk to an unsharded
// deployment.
func SingleNode(addr string, n int) *Map {
	m := &Map{Epoch: 1}
	if n <= 1 {
		m.Shards = []Shard{{ID: 0, Prefix: "/", Addrs: []string{addr}}}
		return m
	}
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, Shard{ID: uint32(i), Addrs: []string{addr}})
	}
	return m
}
