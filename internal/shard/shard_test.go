package shard

import (
	"strings"
	"testing"

	"simurgh/internal/wire"
)

// twoHash is a 2-bucket hash map with a distinct owner per shard.
func twoHash() *Map {
	return &Map{Epoch: 1, Shards: []Shard{
		{ID: 0, Addrs: []string{"h0:1"}},
		{ID: 1, Addrs: []string{"h1:1"}},
	}}
}

func TestRoutePrecedence(t *testing.T) {
	m := &Map{Epoch: 1, Shards: []Shard{
		{ID: 0, Prefix: "/", Addrs: []string{"root:1"}},
		{ID: 1, Prefix: "/warm", Addrs: []string{"warm:1"}},
		{ID: 2, Prefix: "/warm/deep", Addrs: []string{"deep:1"}},
		{ID: 3, Addrs: []string{"h0:1"}},
		{ID: 4, Addrs: []string{"h1:1"}},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		path string
		want uint32
	}{
		{"/warm", 1},          // exact prefix match
		{"/warm/x", 1},        // subtree of /warm
		{"/warm/deep", 2},     // longer prefix wins
		{"/warm/deep/a/b", 2}, // subtree of the longer prefix
		{"/", 0},              // root goes to the "/" shard when one exists
	}
	for _, c := range cases {
		got := m.Route(c.path)
		if got == nil || got.ID != c.want {
			t.Errorf("Route(%q) = %+v, want shard %d", c.path, got, c.want)
		}
	}
	// Paths matching no prefix fall to the hash shards (bucket choice is
	// the hash's business, not this test's).
	for _, p := range []string{"/warmer", "/a/b/c", "/etc"} {
		if got := m.Route(p); got == nil || got.Prefix != "" {
			t.Errorf("Route(%q) = %+v, want a hash shard", p, got)
		}
	}
	// Same first component must always land in the same bucket; cleaning
	// and rooting happen before routing.
	if a, b := m.Route("/docs/a"), m.Route("/docs/b/c"); a.ID != b.ID {
		t.Errorf("same first component routed to shards %d and %d", a.ID, b.ID)
	}
	if a, b := m.Route("/warm/../etc"), m.Route("/etc"); a.ID != b.ID {
		t.Errorf("uncleaned path routed to %d, cleaned to %d", a.ID, b.ID)
	}
	if a, b := m.Route("relative"), m.Route("/relative"); a.ID != b.ID {
		t.Errorf("unrooted path routed to %d, rooted to %d", a.ID, b.ID)
	}
}

func TestRouteRootWithoutRootShard(t *testing.T) {
	m := twoHash()
	if got := m.Route("/"); got == nil || got.ID != 0 {
		t.Errorf("Route(/) = %+v, want the lowest-ID hash shard", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []struct {
		name string
		m    *Map
		want string
	}{
		{"empty", &Map{Epoch: 1}, "no shards"},
		{"dup id", &Map{Epoch: 1, Shards: []Shard{
			{ID: 0, Prefix: "/", Addrs: []string{"a:1"}},
			{ID: 0, Prefix: "/warm", Addrs: []string{"b:1"}},
		}}, "duplicate shard id"},
		{"dup prefix", &Map{Epoch: 1, Shards: []Shard{
			{ID: 0, Prefix: "/", Addrs: []string{"a:1"}},
			{ID: 1, Prefix: "/", Addrs: []string{"b:1"}},
		}}, "duplicate prefix"},
		{"no addrs", &Map{Epoch: 1, Shards: []Shard{
			{ID: 0, Prefix: "/"},
		}}, "no addresses"},
		{"unrooted", &Map{Epoch: 1, Shards: []Shard{
			{ID: 0, Prefix: "warm", Addrs: []string{"a:1"}},
		}}, "not rooted"},
		{"unclean", &Map{Epoch: 1, Shards: []Shard{
			{ID: 0, Prefix: "/warm/", Addrs: []string{"a:1"}},
			{ID: 1, Addrs: []string{"b:1"}},
		}}, "not clean"},
		{"uncovered", &Map{Epoch: 1, Shards: []Shard{
			{ID: 0, Prefix: "/warm", Addrs: []string{"a:1"}},
		}}, "covers no root"},
	}
	for _, c := range bad {
		err := c.m.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
	if err := twoHash().Validate(); err != nil {
		t.Errorf("valid hash map rejected: %v", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := &Map{Epoch: 42, Shards: []Shard{
		{ID: 0, Prefix: "/", Addrs: []string{"a:1", "a:2"}, State: StateServing},
		{ID: 7, Prefix: "/warm", Addrs: []string{"b:1"}, State: StateMigrating},
		{ID: 9, Addrs: []string{"c:1"}},
	}}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	assertMapsEqual(t, m, got)

	// Truncations at every length must error, never panic.
	enc := m.Encode()
	for i := 0; i < len(enc); i++ {
		if _, err := Decode(enc[:i]); err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded", i, len(enc))
		}
	}

	// JSON round trip (the -shard-map file format).
	got, err = ParseJSON(m.JSON())
	if err != nil {
		t.Fatal(err)
	}
	assertMapsEqual(t, m, got)
}

func assertMapsEqual(t *testing.T, want, got *Map) {
	t.Helper()
	if got.Epoch != want.Epoch || len(got.Shards) != len(want.Shards) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	for i := range want.Shards {
		w, g := want.Shards[i], got.Shards[i]
		if g.ID != w.ID || g.Prefix != w.Prefix || g.State != w.State ||
			len(g.Addrs) != len(w.Addrs) {
			t.Fatalf("shard %d: got %+v, want %+v", i, g, w)
		}
		for j := range w.Addrs {
			if g.Addrs[j] != w.Addrs[j] {
				t.Fatalf("shard %d addr %d: got %q, want %q", i, j, g.Addrs[j], w.Addrs[j])
			}
		}
	}
}

func TestSingleNode(t *testing.T) {
	m := SingleNode("n:1", 0)
	if len(m.Shards) != 1 || m.Shards[0].Prefix != "/" {
		t.Fatalf(`SingleNode(0) = %+v, want one "/" shard`, m.Shards)
	}
	m = SingleNode("n:1", 4)
	if len(m.Shards) != 4 {
		t.Fatalf("SingleNode(4) has %d shards", len(m.Shards))
	}
	for _, sh := range m.Shards {
		if sh.Prefix != "" || len(sh.Addrs) != 1 || sh.Addrs[0] != "n:1" {
			t.Fatalf("SingleNode(4) shard %+v, want hash shard at n:1", sh)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := twoHash()
	c := m.Clone()
	c.Shards[0].Addrs[0] = "mutated:1"
	c.Shards[1].ID = 99
	if m.Shards[0].Addrs[0] != "h0:1" || m.Shards[1].ID != 1 {
		t.Fatalf("Clone shares state with the original: %+v", m.Shards)
	}
}

func TestAuthorityServesAndFences(t *testing.T) {
	m := &Map{Epoch: 3, Shards: []Shard{
		{ID: 0, Prefix: "/", Addrs: []string{"other:1"}},
		{ID: 1, Prefix: "/warm/deep", Addrs: []string{"self:1"}},
		{ID: 2, Addrs: []string{"other:1"}},
	}}
	a, err := NewAuthority(m, "self:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if mv := a.MovedPath("/warm/deep/f"); mv != nil {
		t.Errorf("served path fenced: %+v", mv)
	}
	// Root and scaffolding ancestors of served prefixes are shared
	// namespace: never fenced while the node serves anything.
	for _, p := range []string{"/", "/warm"} {
		if mv := a.MovedPath(p); mv != nil {
			t.Errorf("scaffold path %q fenced: %+v", p, mv)
		}
	}
	mv := a.MovedPath("/elsewhere")
	if mv == nil || mv.Shard != 2 || mv.Epoch != 3 || mv.Addr != "other:1" {
		t.Errorf("unserved path: Moved = %+v, want shard 2 epoch 3 at other:1", mv)
	}

	if mv := a.MovedShard(1, true); mv != nil {
		t.Errorf("claimed served shard fenced: %+v", mv)
	}
	if mv := a.MovedShard(0, true); mv == nil || mv.Shard != 0 {
		t.Errorf("claimed unserved shard: Moved = %+v, want shard 0", mv)
	}
	// Unclaimed sessions pass while the node serves anything.
	if mv := a.MovedShard(0, false); mv != nil {
		t.Errorf("unclaimed session fenced on a serving node: %+v", mv)
	}

	if mv := a.CheckAttach(wire.AttachClaim{Shard: 1, Epoch: 3}); mv != nil {
		t.Errorf("attach claim for served shard refused: %+v", mv)
	}
	if mv := a.CheckAttach(wire.AttachClaim{Shard: 0, Epoch: 3}); mv == nil {
		t.Error("attach claim for unserved shard accepted")
	}
}

func TestAuthorityInstall(t *testing.T) {
	m1 := &Map{Epoch: 1, Shards: []Shard{
		{ID: 0, Addrs: []string{"self:1"}},
		{ID: 1, Addrs: []string{"self:1"}},
	}}
	var retired []uint32
	var fencedDuringRetire bool
	var a *Authority
	a, err := NewAuthority(m1, "self:1", func(lost []uint32, next *Map) error {
		retired = append(retired, lost...)
		// The fence must already be up when the drain starts: an operation
		// for the lost shard answers Moved even though the drain has not
		// finished.
		if mv := a.MovedShard(1, true); mv != nil && mv.Epoch == next.Epoch {
			fencedDuringRetire = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	m2 := &Map{Epoch: 2, Shards: []Shard{
		{ID: 0, Addrs: []string{"self:1"}},
		{ID: 1, Addrs: []string{"new:1"}},
	}}
	if _, err := a.Install(m2.Encode()); err != nil {
		t.Fatal(err)
	}
	if len(retired) != 1 || retired[0] != 1 {
		t.Fatalf("onRetire got %v, want [1]", retired)
	}
	if !fencedDuringRetire {
		t.Error("shard 1 was not fenced while its retire drain ran")
	}
	if a.Current().Epoch != 2 {
		t.Fatalf("epoch %d after install, want 2", a.Current().Epoch)
	}

	// Identical re-push: idempotent, no second retire.
	if _, err := a.Install(m2.Encode()); err != nil {
		t.Fatalf("idempotent re-push refused: %v", err)
	}
	if len(retired) != 1 {
		t.Fatalf("re-push re-ran onRetire: %v", retired)
	}

	// A different map at the same epoch is a split brain, not a retry.
	m2b := m2.Clone()
	m2b.Shards[1].Addrs = []string{"third:1"}
	if _, err := a.Install(m2b.Encode()); err == nil {
		t.Error("conflicting install at the current epoch accepted")
	}
	// Stale epochs are refused.
	if _, err := a.Install(m1.Encode()); err == nil {
		t.Error("stale-epoch install accepted")
	}

	// MapFor serves only callers behind the current epoch.
	if a.MapFor(2) != nil {
		t.Error("MapFor(current) should be nil")
	}
	if a.MapFor(1) == nil {
		t.Error("MapFor(stale) should return the payload")
	}
}
