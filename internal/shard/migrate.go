package shard

import (
	"fmt"
	"time"
)

// MigrateOptions parameterizes a migration.
type MigrateOptions struct {
	// Timeout bounds each control RPC (the push to the retiring owner
	// includes its drain). Default 30s.
	Timeout time.Duration
	// Logf receives step-by-step progress. Default: discard.
	Logf func(format string, args ...any)
}

// Migrate moves shard shardID to the replica group at target, live. The
// precondition is that the target nodes are already running and have joined
// the shard's current owner group as replication backups (simurghd -join):
// the snapshot stream and log replay have been carrying the shard's whole
// volume to them since, so by cutover time the handoff is an epoch flip and
// a drain, not a data copy.
//
// The cutover ordering is what makes it safe:
//
//  1. Epoch+1 marks the shard Migrating everywhere (visibility only — the
//     old group still serves; failures here are logged, not fatal).
//  2. Epoch+2, with the target as owner, goes to the OLD group first. The
//     moment each old node installs it, its authority fences the shard —
//     every new operation answers Moved and is never logged — and the old
//     primary then re-exports open descriptors into the log and waits until
//     the target links have acknowledged the whole log (the retire drain).
//     Its MapOK reply is therefore the barrier: every write ever
//     acknowledged to a client is on the target when it arrives.
//  3. The same map goes to the target group, so its nodes start claiming
//     the shard, and the target's first node is promoted to primary (epoch
//     bump; its link to the old primary drops). Clients that hit the fence
//     retry with jittered backoff and rehome to the target by client-ID
//     session resume — descriptor tables included, thanks to the re-export.
//  4. Remaining nodes get the map best-effort (they would learn it from
//     Moved answers anyway).
//
// Between steps 2 and 3 the shard is briefly unavailable for writes (the
// old group answers Moved, the target is not yet primary); the router's
// bounded retries cover the gap. No acknowledged write is lost at any
// point: an operation either entered the old log before the fence (the
// drain covers it) or was answered Moved and never acknowledged.
//
// Returns the installed map.
func Migrate(seeds []string, shardID uint32, target []string, opt MigrateOptions) (*Map, error) {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(target) == 0 {
		return nil, fmt.Errorf("shard: migrate needs a target address")
	}
	cur, err := FetchMapAny(seeds, opt.Timeout)
	if err != nil {
		return nil, err
	}
	sh := cur.ByID(shardID)
	if sh == nil {
		return nil, fmt.Errorf("shard: no shard %d in map epoch %d", shardID, cur.Epoch)
	}
	if sameAddrs(sh.Addrs, target) {
		logf("shard %d already at %v (epoch %d); nothing to do", shardID, target, cur.Epoch)
		return cur, nil
	}
	oldAddrs := append([]string(nil), sh.Addrs...)
	others := otherNodes(cur, shardID, target)

	// Step 1: announce the migration (visibility; best-effort).
	m1 := cur.Clone()
	m1.Epoch++
	m1.ByID(shardID).State = StateMigrating
	p1 := m1.Encode()
	for _, addr := range allNodes(cur, target) {
		if err := PushMap(addr, p1, opt.Timeout); err != nil {
			logf("migrate: announcing to %s: %v", addr, err)
		}
	}
	logf("shard %d: migration %v -> %v announced at epoch %d", shardID, oldAddrs, target, m1.Epoch)

	// Step 2: fence and drain the old owners. The push to each old node
	// returns only after it has stopped serving the shard, and — on the
	// primary — after the target has acknowledged every log entry.
	m2 := cur.Clone()
	m2.Epoch += 2
	nsh := m2.ByID(shardID)
	nsh.Addrs = append([]string(nil), target...)
	nsh.State = StateServing
	p2 := m2.Encode()
	for _, addr := range oldAddrs {
		if err := PushMap(addr, p2, opt.Timeout); err != nil {
			return nil, fmt.Errorf("shard: fencing old owner: %w", err)
		}
		logf("shard %d: old owner %s fenced and drained", shardID, addr)
	}

	// Step 3: hand the shard to the target and promote its first node.
	for _, addr := range target {
		if err := PushMap(addr, p2, opt.Timeout); err != nil {
			return nil, fmt.Errorf("shard: installing map on target: %w", err)
		}
	}
	epoch, err := PromoteNode(target[0], opt.Timeout)
	if err != nil {
		return nil, fmt.Errorf("shard: promoting target: %w", err)
	}
	logf("shard %d: %s promoted to primary (replication epoch %d, map epoch %d)",
		shardID, target[0], epoch, m2.Epoch)

	// Step 4: everyone else, best-effort.
	for _, addr := range others {
		if err := PushMap(addr, p2, opt.Timeout); err != nil {
			logf("migrate: updating %s: %v", addr, err)
		}
	}
	return m2, nil
}

// sameAddrs reports set equality of two address lists.
func sameAddrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		if !set[x] {
			return false
		}
	}
	return true
}

// allNodes lists every address in the map plus extras, deduplicated.
func allNodes(m *Map, extra []string) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(a string) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for i := range m.Shards {
		for _, a := range m.Shards[i].Addrs {
			add(a)
		}
	}
	for _, a := range extra {
		add(a)
	}
	return out
}

// otherNodes lists map addresses outside the moving shard's old and new
// owner groups.
func otherNodes(m *Map, shardID uint32, target []string) []string {
	skip := make(map[string]bool)
	if sh := m.ByID(shardID); sh != nil {
		for _, a := range sh.Addrs {
			skip[a] = true
		}
	}
	for _, a := range target {
		skip[a] = true
	}
	var out []string
	seen := make(map[string]bool)
	for i := range m.Shards {
		for _, a := range m.Shards[i].Addrs {
			if !skip[a] && !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}
