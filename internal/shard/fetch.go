package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"simurgh/internal/wire"
)

// defaultRPCTimeout bounds one control-plane exchange when the caller
// passes zero. Map installs on a retiring owner include the drain, so
// pushes get a generous bound.
const defaultRPCTimeout = 30 * time.Second

// roundTrip dials addr, sends one frame, and returns the first reply frame
// (payload copied out of the reader's pooled buffer).
func roundTrip(addr string, timeout time.Duration, kind wire.Kind, payload []byte) (wire.Kind, []byte, error) {
	if timeout <= 0 {
		timeout = defaultRPCTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(conn, kind, payload); err != nil {
		return 0, nil, err
	}
	fr := wire.NewFrameReader(conn)
	defer fr.Release()
	k, pl, err := fr.Next()
	if err != nil {
		return 0, nil, err
	}
	return k, append([]byte(nil), pl...), nil
}

// FetchMap asks the node at addr for its shard map. A nil map with a nil
// error means the node's map is still at haveEpoch (pass zero to always get
// the full map).
func FetchMap(addr string, haveEpoch uint64, timeout time.Duration) (*Map, error) {
	kind, payload, err := roundTrip(addr, timeout, wire.KindMapGet, wire.AppendMapGet(nil, haveEpoch))
	if err != nil {
		return nil, fmt.Errorf("shard: fetching map from %s: %w", addr, err)
	}
	switch kind {
	case wire.KindMapOK:
		if len(payload) == 0 {
			return nil, nil
		}
		return Decode(payload)
	case wire.KindErr:
		return nil, fmt.Errorf("shard: fetching map from %s: %w", addr, wire.ParseErrFrame(payload))
	default:
		return nil, fmt.Errorf("%w: unexpected kind %d fetching map", wire.ErrBadMessage, kind)
	}
}

// FetchMapAny tries each seed in turn and returns the first map fetched,
// joining the per-seed errors on total failure.
func FetchMapAny(seeds []string, timeout time.Duration) (*Map, error) {
	var errs []error
	for _, addr := range seeds {
		m, err := FetchMap(addr, 0, timeout)
		if err == nil && m != nil {
			return m, nil
		}
		if err == nil {
			err = errors.New("empty map reply")
		}
		errs = append(errs, fmt.Errorf("%s: %w", addr, err))
	}
	if len(errs) == 0 {
		return nil, errors.New("shard: no seed addresses")
	}
	return nil, errors.Join(errs...)
}

// PushMap installs an encoded map on the node at addr (KindMapSet). On a
// node losing shards the reply arrives only after the node has fenced and
// drained, so the call doubles as the migration's handoff barrier.
func PushMap(addr string, payload []byte, timeout time.Duration) error {
	kind, reply, err := roundTrip(addr, timeout, wire.KindMapSet, payload)
	if err != nil {
		return fmt.Errorf("shard: pushing map to %s: %w", addr, err)
	}
	switch kind {
	case wire.KindMapOK:
		return nil
	case wire.KindErr:
		return fmt.Errorf("shard: pushing map to %s: %w", addr, wire.ParseErrFrame(reply))
	default:
		return fmt.Errorf("%w: unexpected kind %d pushing map", wire.ErrBadMessage, kind)
	}
}

// PromoteNode sends the admin promote frame to addr and returns the new
// replication epoch. (A raw reimplementation of the wire client's Promote:
// this package sits below the client, which imports it for routing.)
func PromoteNode(addr string, timeout time.Duration) (uint64, error) {
	kind, payload, err := roundTrip(addr, timeout, wire.KindPromote, nil)
	if err != nil {
		return 0, fmt.Errorf("shard: promoting %s: %w", addr, err)
	}
	switch kind {
	case wire.KindPromoteOK:
		if len(payload) < 8 {
			return 0, fmt.Errorf("%w: short promote reply", wire.ErrTruncated)
		}
		return binary.LittleEndian.Uint64(payload), nil
	case wire.KindErr:
		return 0, fmt.Errorf("shard: promoting %s: %w", addr, wire.ParseErrFrame(payload))
	default:
		return 0, fmt.Errorf("%w: unexpected kind %d promoting", wire.ErrBadMessage, kind)
	}
}
