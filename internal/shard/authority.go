package shard

import (
	"bytes"
	"fmt"
	"io"
	"path"
	"strings"
	"sync"
	"sync/atomic"

	"simurgh/internal/wire"
)

// NoShard is the Moved.Shard value for operations that could not be
// attributed to any shard (descriptor operations on an unclaimed session
// hitting a fully retired node).
const NoShard = ^uint32(0)

// Authority is a node's view of the shard map and the arbiter of what the
// node serves. It implements the server's Sharding hook: the handshake asks
// it to verify shard claims and serve/install maps, and the batch executor
// asks it per operation whether the path's shard is still served here.
//
// The serving decision is one atomic pointer load on the hot path; installs
// swap the whole state at once, so the instant a new map is in place every
// subsequent operation for a lost shard answers Moved — the fence the
// migration cutover relies on (the server re-checks under the replication
// op gate, making the fence precise, not just prompt).
type Authority struct {
	self string
	// onRetire is called after an install that removes shards this node was
	// serving, with the lost IDs and the newly installed map. The daemon
	// wires it to the replication drain: re-export descriptors, then wait
	// until the new owners' links have acknowledged the whole log. An error
	// fails the install RPC (the fence stays in place) so the migration
	// coordinator knows the handoff is incomplete.
	onRetire func(lost []uint32, next *Map) error

	mu    sync.Mutex // serializes installs
	state atomic.Pointer[authState]

	moved         atomic.Uint64
	installs      atomic.Uint64
	staleAttaches atomic.Uint64
}

// authState is one immutable generation of the authority's view.
type authState struct {
	m         *Map
	payload   []byte
	serves    map[uint32]bool
	servesAny bool
	scaffold  map[string]bool           // strict ancestors of served prefixes
	ops       map[uint32]*atomic.Uint64 // per-shard served-op counters
}

func (a *Authority) buildState(m *Map, payload []byte) *authState {
	st := &authState{
		m:        m,
		payload:  payload,
		serves:   make(map[uint32]bool, len(m.Shards)),
		scaffold: make(map[string]bool),
		ops:      make(map[uint32]*atomic.Uint64, len(m.Shards)),
	}
	prev := a.state.Load()
	for i := range m.Shards {
		sh := &m.Shards[i]
		for _, addr := range sh.Addrs {
			if addr == a.self {
				st.serves[sh.ID] = true
				st.servesAny = true
				// The scaffolding directories above a served prefix live on
				// this volume too (the router provisions them); operations on
				// them must not be fenced even though they route elsewhere.
				for d := path.Dir(sh.Prefix); len(d) > 1; d = path.Dir(d) {
					st.scaffold[d] = true
				}
				break
			}
		}
		// Counters survive installs so a migration doesn't zero the node's
		// op accounting mid-scrape.
		if prev != nil && prev.ops[sh.ID] != nil {
			st.ops[sh.ID] = prev.ops[sh.ID]
		} else {
			st.ops[sh.ID] = new(atomic.Uint64)
		}
	}
	return st
}

// NewAuthority builds an authority for the node advertised at self, serving
// whatever shards of m list that address. onRetire may be nil (nodes that
// never drain, e.g. tests).
func NewAuthority(m *Map, self string, onRetire func(lost []uint32, next *Map) error) (*Authority, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	a := &Authority{self: self, onRetire: onRetire}
	a.state.Store(a.buildState(m.Clone(), m.Encode()))
	return a, nil
}

// Self reports the advertised address this authority identifies as.
func (a *Authority) Self() string { return a.self }

// Current returns the installed map. Callers must not mutate it.
func (a *Authority) Current() *Map { return a.state.Load().m }

// MapFor returns the encoded map, or nil when the caller's epoch is
// already current (the KindMapGet fast path).
func (a *Authority) MapFor(haveEpoch uint64) []byte {
	st := a.state.Load()
	if st.m.Epoch == haveEpoch {
		return nil
	}
	return st.payload
}

// Install decodes and installs a pushed map (KindMapSet). The new epoch
// must advance; re-pushing the identical current map is an idempotent
// no-op so coordinator retries are safe. The state swap happens before the
// retire hook runs: from the swap on, every operation for a lost shard
// answers Moved, and only then does the drain wait for the new owners to
// catch up — the cutover ordering that makes acknowledged writes safe.
// Returns the encoded installed map.
func (a *Authority) Install(payload []byte) ([]byte, error) {
	m, err := Decode(payload)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.state.Load()
	if m.Epoch < cur.m.Epoch {
		return nil, fmt.Errorf("shard: install of epoch %d behind current %d", m.Epoch, cur.m.Epoch)
	}
	if m.Epoch == cur.m.Epoch {
		if bytes.Equal(payload, cur.payload) {
			return cur.payload, nil
		}
		return nil, fmt.Errorf("shard: conflicting install at epoch %d", m.Epoch)
	}
	next := a.buildState(m, append([]byte(nil), payload...))
	a.state.Store(next)
	a.installs.Add(1)
	var lost []uint32
	for id := range cur.serves {
		if !next.serves[id] {
			lost = append(lost, id)
		}
	}
	if len(lost) > 0 && a.onRetire != nil {
		if err := a.onRetire(lost, m); err != nil {
			return nil, fmt.Errorf("shard: draining retired shards %v: %w", lost, err)
		}
	}
	return next.payload, nil
}

// CheckAttach verifies an attach-time shard claim: nil when this node
// serves the claimed shard, a Moved naming the current owner otherwise.
func (a *Authority) CheckAttach(claim wire.AttachClaim) *wire.Moved {
	st := a.state.Load()
	if st.serves[claim.Shard] {
		return nil
	}
	a.staleAttaches.Add(1)
	return st.movedTo(claim.Shard)
}

// MovedPath decides a path-carrying operation: nil to serve (counting it
// against the shard), a Moved when the path's shard lives elsewhere. The
// root and the scaffolding directories above served prefixes are shared
// namespace — every serving node answers for them (the router's root
// listings merge across shards, and subtree ancestors live on the subtree
// owner's volume), so they are never fenced while the node serves anything.
func (a *Authority) MovedPath(p string) *wire.Moved {
	st := a.state.Load()
	if st.servesAny {
		if cp := cleanRooted(p); cp == "/" || st.scaffold[cp] {
			return nil
		}
	}
	sh := st.m.Route(p)
	if sh == nil {
		return &wire.Moved{Shard: NoShard, Epoch: st.m.Epoch}
	}
	if st.serves[sh.ID] {
		st.ops[sh.ID].Add(1)
		return nil
	}
	a.moved.Add(1)
	return &wire.Moved{Shard: sh.ID, Epoch: st.m.Epoch, Addr: sh.Addrs[0]}
}

// cleanRooted canonicalizes a path to its cleaned, rooted form.
func cleanRooted(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// MovedShard decides a descriptor operation, which carries no path: the
// session's attach-time shard claim stands in for routing. Unclaimed
// sessions (plain clients on a sharded node) are only fenced once the node
// serves nothing at all — a fully retired group must not quietly keep
// serving old descriptors.
func (a *Authority) MovedShard(shard uint32, claimed bool) *wire.Moved {
	st := a.state.Load()
	if !claimed {
		if st.servesAny {
			return nil
		}
		a.moved.Add(1)
		return &wire.Moved{Shard: NoShard, Epoch: st.m.Epoch}
	}
	if st.serves[shard] {
		st.ops[shard].Add(1)
		return nil
	}
	a.moved.Add(1)
	return st.movedTo(shard)
}

// movedTo builds the Moved answer for a shard under this state.
func (st *authState) movedTo(id uint32) *wire.Moved {
	mv := &wire.Moved{Shard: id, Epoch: st.m.Epoch}
	if sh := st.m.ByID(id); sh != nil {
		mv.Addr = sh.Addrs[0]
	}
	return mv
}

// WriteMetrics appends the simurgh_shard_* series to a /metrics scrape.
func (a *Authority) WriteMetrics(w io.Writer) {
	st := a.state.Load()
	fmt.Fprintf(w, "# HELP simurgh_shard_epoch Installed shard map epoch.\n# TYPE simurgh_shard_epoch gauge\nsimurgh_shard_epoch %d\n", st.m.Epoch)
	fmt.Fprintf(w, "# HELP simurgh_shard_serving Shards this node serves.\n# TYPE simurgh_shard_serving gauge\nsimurgh_shard_serving %d\n", len(st.serves))
	fmt.Fprintf(w, "# HELP simurgh_shard_moved_total Operations answered with Moved (stale-routed clients).\n# TYPE simurgh_shard_moved_total counter\nsimurgh_shard_moved_total %d\n", a.moved.Load())
	fmt.Fprintf(w, "# HELP simurgh_shard_map_installs_total Shard map installs accepted.\n# TYPE simurgh_shard_map_installs_total counter\nsimurgh_shard_map_installs_total %d\n", a.installs.Load())
	fmt.Fprintf(w, "# HELP simurgh_shard_stale_attaches_total Attach claims refused for shards not served here.\n# TYPE simurgh_shard_stale_attaches_total counter\nsimurgh_shard_stale_attaches_total %d\n", a.staleAttaches.Load())
	fmt.Fprintf(w, "# HELP simurgh_shard_ops_total Operations served, by shard.\n# TYPE simurgh_shard_ops_total counter\n")
	for i := range st.m.Shards {
		sh := &st.m.Shards[i]
		if c := st.ops[sh.ID]; c != nil && st.serves[sh.ID] {
			fmt.Fprintf(w, "simurgh_shard_ops_total{shard=\"%d\"} %d\n", sh.ID, c.Load())
		}
	}
}

// WriteClusterRows injects the shard table into a /cluster.json document:
// it writes a leading comma and the "shard_epoch"/"shards" members, for a
// caller positioned just after the document's last regular member.
func (a *Authority) WriteClusterRows(w io.Writer) {
	st := a.state.Load()
	fmt.Fprintf(w, ",\n  \"shard_epoch\": %d,\n  \"shards\": [", st.m.Epoch)
	for i := range st.m.Shards {
		sh := &st.m.Shards[i]
		if i > 0 {
			io.WriteString(w, ",")
		}
		var ops uint64
		if c := st.ops[sh.ID]; c != nil {
			ops = c.Load()
		}
		fmt.Fprintf(w, "\n    {\"id\": %d, \"prefix\": %q, \"state\": %q, \"served\": %v, \"ops\": %d, \"addrs\": [",
			sh.ID, sh.Prefix, sh.State.String(), st.serves[sh.ID], ops)
		for j, addr := range sh.Addrs {
			if j > 0 {
				io.WriteString(w, ", ")
			}
			fmt.Fprintf(w, "%q", addr)
		}
		io.WriteString(w, "]}")
	}
	if len(st.m.Shards) > 0 {
		io.WriteString(w, "\n  ")
	}
	io.WriteString(w, "]")
}
