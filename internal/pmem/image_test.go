package pmem

import (
	"bytes"
	"strings"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	d := New(1 << 16)
	d.WriteAt(100, []byte("persisted across serialization"))
	d.Store64(4096, 0xfeedface)
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	d2, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != d.Size() {
		t.Fatalf("size %d != %d", d2.Size(), d.Size())
	}
	got := make([]byte, 30)
	d2.ReadAt(100, got)
	if string(got) != "persisted across serialization" {
		t.Fatalf("content = %q", got)
	}
	if d2.Load64(4096) != 0xfeedface {
		t.Fatalf("word = %#x", d2.Load64(4096))
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	if _, err := ReadImage(strings.NewReader("this is not a device image at all")); err == nil {
		t.Fatal("garbage image accepted")
	}
}

func TestReadImageRejectsTruncated(t *testing.T) {
	d := New(1 << 14)
	var buf bytes.Buffer
	d.WriteTo(&buf)
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
	if _, err := ReadImage(trunc); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestLatencyChargesSpin(t *testing.T) {
	d := New(1 << 12)
	var charged uint64
	d.SetLatency(Latency{FlushNs: 7, FenceNs: 11, NTStoreNsPerLine: 3},
		func(ns uint64) { charged += ns })
	d.Flush(0, 64)                  // 1 line -> 7
	d.Fence()                       // 11
	d.NTStore(0, make([]byte, 128)) // 2 lines -> 6
	if charged != 7+11+6 {
		t.Fatalf("charged %d ns, want 24", charged)
	}
}

func TestZeroLatencyChargesNothing(t *testing.T) {
	d := New(1 << 12)
	called := false
	d.SetLatency(Latency{}, func(uint64) { called = true })
	d.Flush(0, 64)
	d.Fence()
	if called {
		t.Fatal("zero latency model still spun")
	}
}
