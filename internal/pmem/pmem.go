// Package pmem emulates a byte-addressable non-volatile main-memory (NVMM)
// device.
//
// The paper's implementation runs on Intel Optane DIMMs and relies on the
// x86 persistence primitives clwb (cache-line write back), non-temporal
// stores, and sfence. Go exposes none of these, so this package models them
// explicitly: a Device is a flat arena addressed by relative offsets
// (pmem.Ptr), and durability is a property tracked per 64-byte cache line.
//
// Two modes are supported:
//
//   - Fast mode (the default): stores go straight to the arena and
//     Flush/Fence only update statistics. This is the mode benchmarks run
//     in; it has no bookkeeping overhead beyond a branch.
//
//   - Tracked mode: the Device additionally keeps a shadow "persistent"
//     image and per-line dirty state. A store makes its lines pending; Flush
//     stages them; Fence copies staged lines to the shadow image. Crash
//     rolls the arena back to the shadow image (optionally letting a random
//     subset of unfenced lines survive, as real hardware may persist lines
//     through cache eviction). Crash-consistency tests run in this mode and
//     falsify incorrect ordering exactly as real NVMM would.
//
// All multi-word data structures stored in the arena use relative offsets
// instead of machine pointers, because the paper maps NVMM at a different
// virtual address in every process (ASLR); Ptr is that relative pointer.
package pmem

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Ptr is a persistent relative pointer: a byte offset from the start of the
// device. The zero value is the null pointer (offset 0 is occupied by the
// superblock precisely so that 0 can never address a valid object).
type Ptr uint64

// IsNull reports whether p is the null persistent pointer.
func (p Ptr) IsNull() bool { return p == 0 }

// CachelineSize is the persistence granularity, matching x86.
const CachelineSize = 64

// Mode selects the persistence bookkeeping level of a Device.
type Mode int32

const (
	// ModeFast performs no durability tracking.
	ModeFast Mode = iota
	// ModeTracked maintains a shadow persistent image for crash simulation.
	ModeTracked
)

// Stats counts device traffic. All fields are updated atomically.
type Stats struct {
	LoadBytes  atomic.Uint64
	StoreBytes atomic.Uint64
	NTBytes    atomic.Uint64
	Flushes    atomic.Uint64
	Fences     atomic.Uint64
}

// StatsSnapshot is a plain-value copy of Stats at one instant. Snapshots
// taken at the boundaries of an operation window and diffed with Sub
// attribute the device traffic of that window (the per-op accounting the
// observability layer is built on).
type StatsSnapshot struct {
	LoadBytes  uint64
	StoreBytes uint64
	NTBytes    uint64
	Flushes    uint64
	Fences     uint64
}

// Snapshot reads all counters atomically (individually, not as one cut —
// fine for monotonic counters).
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		LoadBytes:  s.LoadBytes.Load(),
		StoreBytes: s.StoreBytes.Load(),
		NTBytes:    s.NTBytes.Load(),
		Flushes:    s.Flushes.Load(),
		Fences:     s.Fences.Load(),
	}
}

// Sub returns the field-wise difference s-base.
func (s StatsSnapshot) Sub(base StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		LoadBytes:  s.LoadBytes - base.LoadBytes,
		StoreBytes: s.StoreBytes - base.StoreBytes,
		NTBytes:    s.NTBytes - base.NTBytes,
		Flushes:    s.Flushes - base.Flushes,
		Fences:     s.Fences - base.Fences,
	}
}

// Latency models the timing of the NVMM persistence primitives. Plain
// cached loads/stores are not charged (they hit the CPU cache, and the
// arena already runs at DRAM speed); flushes, fences and non-temporal
// stores spin for their Optane-calibrated durations. The zero value charges
// nothing (unit tests).
type Latency struct {
	// FlushNs is the cost of issuing one clwb.
	FlushNs uint64
	// FenceNs is the cost of an sfence draining the write-pending queue.
	FenceNs uint64
	// NTStoreNsPerLine is the per-cacheline cost of a non-temporal store
	// stream (sets the sustainable write bandwidth).
	NTStoreNsPerLine uint64
}

// OptaneLatency approximates Intel Optane DC PMM: clwb ≈ 40 ns to issue,
// sfence ≈ 100 ns to drain, and a sustained non-temporal write stream of
// roughly 1.6 GB/s per thread (≈ 40 ns per 64-byte line — NT streaming is
// at least as fast as cached stores plus write-back).
func OptaneLatency() Latency {
	return Latency{FlushNs: 40, FenceNs: 100, NTStoreNsPerLine: 40}
}

// Device is an emulated NVMM DIMM region.
type Device struct {
	buf  []byte
	size uint64
	mode atomic.Int32
	lat  Latency
	spin func(ns uint64)

	// Tracked-mode state, guarded by mu.
	mu      sync.Mutex
	shadow  []byte
	pending map[uint64]struct{} // line offsets written but not flushed
	staged  map[uint64]struct{} // line offsets flushed, awaiting fence

	fenceObs FenceObserver

	Stats Stats
}

// FenceObserver receives the wall-clock duration of device fences for the
// flight recorder. The device only reads the clock around a fence while
// TraceEnabled reports true, so an installed-but-idle observer costs one
// interface call and one atomic load per fence.
type FenceObserver interface {
	TraceEnabled() bool
	ObserveFence(start time.Time, dur time.Duration)
}

// SetFenceObserver installs o as the device's fence observer (nil removes
// it). Install before the device sees concurrent traffic; the field is not
// synchronized.
func (d *Device) SetFenceObserver(o FenceObserver) { d.fenceObs = o }

// New creates a device of the given size (rounded up to a cache line).
// The arena is zero-filled, which doubles as the "freshly formatted" state.
func New(size uint64) *Device {
	size = (size + CachelineSize - 1) &^ uint64(CachelineSize-1)
	return &Device{
		buf:     make([]byte, size),
		size:    size,
		pending: make(map[uint64]struct{}),
		staged:  make(map[uint64]struct{}),
	}
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return d.size }

// StatsSnapshot copies the device's traffic counters at this instant.
func (d *Device) StatsSnapshot() StatsSnapshot { return d.Stats.Snapshot() }

// Prefault touches every page of the arena so the host kernel materializes
// it up front. Benchmarks call this once per device: otherwise first-touch
// page faults land inside measured windows and add run-to-run variance.
func (d *Device) Prefault() {
	for off := 0; off < len(d.buf); off += 4096 {
		d.buf[off] = 0
	}
}

// SetLatency installs a persistence-latency model; spin must busy-wait for
// approximately the given nanoseconds (see cost.SpinNs).
func (d *Device) SetLatency(lat Latency, spin func(ns uint64)) {
	d.lat = lat
	d.spin = spin
}

func (d *Device) charge(ns uint64) {
	if ns != 0 && d.spin != nil {
		d.spin(ns)
	}
}

// Mode returns the current persistence-tracking mode.
func (d *Device) Mode() Mode { return Mode(d.mode.Load()) }

// SetMode switches persistence tracking. Switching to ModeTracked snapshots
// the current arena as the persistent image (i.e. everything written so far
// is considered durable).
func (d *Device) SetMode(m Mode) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m == ModeTracked {
		if d.shadow == nil {
			d.shadow = make([]byte, d.size)
		}
		copy(d.shadow, d.buf)
		clear(d.pending)
		clear(d.staged)
	}
	d.mode.Store(int32(m))
}

func (d *Device) tracked() bool { return Mode(d.mode.Load()) == ModeTracked }

func (d *Device) check(off, n uint64) {
	if off+n > d.size || off+n < off {
		panic(fmt.Sprintf("pmem: access [%#x,%#x) out of device bounds %#x", off, off+n, d.size))
	}
}

// markDirty records the cache lines of [off, off+n) as pending (written but
// not yet flushed). Only called in tracked mode.
func (d *Device) markDirty(off, n uint64) {
	first := off &^ uint64(CachelineSize-1)
	last := (off + n - 1) &^ uint64(CachelineSize-1)
	d.mu.Lock()
	for l := first; l <= last; l += CachelineSize {
		d.pending[l] = struct{}{}
	}
	d.mu.Unlock()
}

// markStaged records the cache lines of [off, off+n) as staged for the next
// fence (the state after clwb or a non-temporal store).
func (d *Device) markStaged(off, n uint64) {
	first := off &^ uint64(CachelineSize-1)
	last := (off + n - 1) &^ uint64(CachelineSize-1)
	d.mu.Lock()
	for l := first; l <= last; l += CachelineSize {
		delete(d.pending, l)
		d.staged[l] = struct{}{}
	}
	d.mu.Unlock()
}

// word returns a pointer to the naturally aligned 8-byte word at off.
func (d *Device) word(off uint64) *uint64 {
	if off%8 != 0 {
		panic(fmt.Sprintf("pmem: misaligned 8-byte access at %#x", off))
	}
	d.check(off, 8)
	return (*uint64)(unsafe.Pointer(&d.buf[off]))
}

// word32 returns a pointer to the naturally aligned 4-byte word at off.
func (d *Device) word32(off uint64) *uint32 {
	if off%4 != 0 {
		panic(fmt.Sprintf("pmem: misaligned 4-byte access at %#x", off))
	}
	d.check(off, 4)
	return (*uint32)(unsafe.Pointer(&d.buf[off]))
}

// Load64 reads the 8-byte word at off with a plain (non-atomic) load.
func (d *Device) Load64(off uint64) uint64 { return *d.word(off) }

// Store64 writes the 8-byte word at off with a plain store.
func (d *Device) Store64(off uint64, v uint64) {
	*d.word(off) = v
	if d.tracked() {
		d.markDirty(off, 8)
	}
}

// Load32 reads the 4-byte word at off.
func (d *Device) Load32(off uint64) uint32 { return *d.word32(off) }

// Store32 writes the 4-byte word at off.
func (d *Device) Store32(off uint64, v uint32) {
	*d.word32(off) = v
	if d.tracked() {
		d.markDirty(off, 4)
	}
}

// AtomicLoad64 reads the word at off with acquire semantics.
func (d *Device) AtomicLoad64(off uint64) uint64 {
	return atomic.LoadUint64(d.word(off))
}

// AtomicStore64 writes the word at off with release semantics. Like real
// hardware, the store is not durable until the line is flushed and fenced.
func (d *Device) AtomicStore64(off uint64, v uint64) {
	atomic.StoreUint64(d.word(off), v)
	if d.tracked() {
		d.markDirty(off, 8)
	}
}

// CompareAndSwap64 atomically swaps the word at off if it equals old.
func (d *Device) CompareAndSwap64(off uint64, old, new uint64) bool {
	ok := atomic.CompareAndSwapUint64(d.word(off), old, new)
	if ok && d.tracked() {
		d.markDirty(off, 8)
	}
	return ok
}

// AtomicAdd64 atomically adds delta to the word at off and returns the new value.
func (d *Device) AtomicAdd64(off uint64, delta uint64) uint64 {
	v := atomic.AddUint64(d.word(off), delta)
	if d.tracked() {
		d.markDirty(off, 8)
	}
	return v
}

// AtomicOr64 atomically ORs mask into the word at off, returning the old value.
func (d *Device) AtomicOr64(off uint64, mask uint64) uint64 {
	for {
		old := atomic.LoadUint64(d.word(off))
		if atomic.CompareAndSwapUint64(d.word(off), old, old|mask) {
			if d.tracked() {
				d.markDirty(off, 8)
			}
			return old
		}
	}
}

// AtomicAnd64 atomically ANDs mask into the word at off, returning the old value.
func (d *Device) AtomicAnd64(off uint64, mask uint64) uint64 {
	for {
		old := atomic.LoadUint64(d.word(off))
		if atomic.CompareAndSwapUint64(d.word(off), old, old&mask) {
			if d.tracked() {
				d.markDirty(off, 8)
			}
			return old
		}
	}
}

// ReadAt copies len(p) bytes starting at off into p.
func (d *Device) ReadAt(off uint64, p []byte) {
	d.check(off, uint64(len(p)))
	copy(p, d.buf[off:off+uint64(len(p))])
	d.Stats.LoadBytes.Add(uint64(len(p)))
}

// WriteAt copies p into the device at off using regular (cached) stores.
func (d *Device) WriteAt(off uint64, p []byte) {
	d.check(off, uint64(len(p)))
	copy(d.buf[off:off+uint64(len(p))], p)
	d.Stats.StoreBytes.Add(uint64(len(p)))
	if d.tracked() {
		d.markDirty(off, uint64(len(p)))
	}
}

// NTStore copies p into the device at off with non-temporal stores: the data
// bypasses the cache and becomes durable at the next Fence. This is the data
// path the paper uses for file writes.
func (d *Device) NTStore(off uint64, p []byte) {
	d.check(off, uint64(len(p)))
	copy(d.buf[off:off+uint64(len(p))], p)
	d.Stats.NTBytes.Add(uint64(len(p)))
	d.charge(d.lat.NTStoreNsPerLine * ((uint64(len(p)) + CachelineSize - 1) / CachelineSize))
	if d.tracked() {
		d.markStaged(off, uint64(len(p)))
	}
}

// Bytes returns the live arena slice [off, off+n). The caller must treat it
// as volatile memory: reads are fine, writes bypass persistence tracking.
// It exists for zero-copy read paths.
func (d *Device) Bytes(off, n uint64) []byte {
	d.check(off, n)
	return d.buf[off : off+n : off+n]
}

// Zero clears [off, off+n) with regular stores.
func (d *Device) Zero(off, n uint64) {
	d.check(off, n)
	clear(d.buf[off : off+n])
	d.Stats.StoreBytes.Add(n)
	if d.tracked() {
		d.markDirty(off, n)
	}
}

// Flush issues a cache-line write back (clwb) for every line overlapping
// [off, off+n). The lines become durable at the next Fence.
func (d *Device) Flush(off, n uint64) {
	if n == 0 {
		return
	}
	d.check(off, n)
	lines := (n + CachelineSize - 1) / CachelineSize
	d.Stats.Flushes.Add(lines)
	d.charge(d.lat.FlushNs * lines)
	if d.tracked() {
		d.markStaged(off, n)
	}
}

// Fence issues an sfence: all previously flushed or non-temporally written
// lines become durable (are copied to the shadow persistent image).
func (d *Device) Fence() {
	if o := d.fenceObs; o != nil && o.TraceEnabled() {
		start := time.Now()
		d.fence()
		o.ObserveFence(start, time.Since(start))
		return
	}
	d.fence()
}

func (d *Device) fence() {
	d.Stats.Fences.Add(1)
	d.charge(d.lat.FenceNs)
	if !d.tracked() {
		return
	}
	d.mu.Lock()
	for l := range d.staged {
		copy(d.shadow[l:l+CachelineSize], d.buf[l:l+CachelineSize])
	}
	clear(d.staged)
	d.mu.Unlock()
}

// Persist is the common flush+fence sequence used to make a small update durable.
func (d *Device) Persist(off, n uint64) {
	d.Flush(off, n)
	d.Fence()
}

// Crash simulates a power failure in tracked mode: the arena reverts to the
// shadow persistent image. Every line that was not both flushed and fenced
// is lost. Panics in fast mode, where no persistent image exists.
func (d *Device) Crash() {
	d.crash(nil)
}

// CrashPartial simulates a power failure where an arbitrary subset of
// unfenced lines happens to have reached the media anyway (cache eviction,
// in-flight writebacks). Each pending or staged line independently survives
// with probability 1/2 under rng. Both outcomes are legal persistent states
// on real hardware, so recovery code must handle either.
func (d *Device) CrashPartial(rng *rand.Rand) {
	d.crash(rng)
}

func (d *Device) crash(rng *rand.Rand) {
	if !d.tracked() {
		panic("pmem: Crash called on a device in fast mode")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if rng != nil {
		for l := range d.pending {
			if rng.Intn(2) == 0 {
				copy(d.shadow[l:l+CachelineSize], d.buf[l:l+CachelineSize])
			}
		}
		for l := range d.staged {
			if rng.Intn(2) == 0 {
				copy(d.shadow[l:l+CachelineSize], d.buf[l:l+CachelineSize])
			}
		}
	}
	copy(d.buf, d.shadow)
	clear(d.pending)
	clear(d.staged)
}

// WriteTo serializes the device's current contents (header + raw arena),
// so a volume can be saved to a host file and reopened later.
func (d *Device) WriteTo(w io.Writer) (int64, error) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], imageMagic)
	binary.LittleEndian.PutUint64(hdr[8:], d.size)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(d.buf)
	return int64(n) + 16, err
}

// ReadImage deserializes a device previously written with WriteTo.
func ReadImage(r io.Reader) (*Device, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != imageMagic {
		return nil, fmt.Errorf("pmem: not a device image")
	}
	size := binary.LittleEndian.Uint64(hdr[8:])
	if size > 1<<40 {
		return nil, fmt.Errorf("pmem: implausible image size %d", size)
	}
	d := New(size)
	if _, err := io.ReadFull(r, d.buf); err != nil {
		return nil, err
	}
	return d, nil
}

const imageMagic = 0x53494d5552474844 // "SIMURGHD"

// DirtyLines returns the number of cache lines that are not yet durable
// (pending + staged). Useful in tests asserting that an operation persisted
// everything it wrote.
func (d *Device) DirtyLines() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending) + len(d.staged)
}

// Gauge is one named point-in-time device measurement for the
// observability exporters.
type Gauge struct {
	Name  string
	Value uint64
}

// Gauges reports the device's current levels: arena size, persistence
// mode, and (in tracked mode) the number of not-yet-durable lines.
func (d *Device) Gauges() []Gauge {
	g := []Gauge{
		{Name: "arena_bytes", Value: d.size},
		{Name: "mode_tracked", Value: 0},
	}
	if d.tracked() {
		g[1].Value = 1
		g = append(g, Gauge{Name: "dirty_lines", Value: uint64(d.DirtyLines())})
	}
	return g
}
