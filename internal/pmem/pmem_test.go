package pmem

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewRoundsToCacheline(t *testing.T) {
	d := New(100)
	if d.Size()%CachelineSize != 0 {
		t.Fatalf("size %d not cacheline aligned", d.Size())
	}
	if d.Size() < 100 {
		t.Fatalf("size %d smaller than requested", d.Size())
	}
}

func TestLoadStore64(t *testing.T) {
	d := New(4096)
	d.Store64(64, 0xdeadbeefcafebabe)
	if got := d.Load64(64); got != 0xdeadbeefcafebabe {
		t.Fatalf("Load64 = %#x", got)
	}
	d.Store32(128, 0x12345678)
	if got := d.Load32(128); got != 0x12345678 {
		t.Fatalf("Load32 = %#x", got)
	}
}

func TestMisalignedPanics(t *testing.T) {
	d := New(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on misaligned access")
		}
	}()
	d.Load64(3)
}

func TestOutOfBoundsPanics(t *testing.T) {
	d := New(128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds access")
		}
	}()
	d.Store64(1024, 1)
}

func TestReadWriteAt(t *testing.T) {
	d := New(4096)
	src := []byte("the quick brown fox")
	d.WriteAt(100, src)
	got := make([]byte, len(src))
	d.ReadAt(100, got)
	if !bytes.Equal(got, src) {
		t.Fatalf("ReadAt = %q, want %q", got, src)
	}
}

func TestZero(t *testing.T) {
	d := New(4096)
	d.WriteAt(0, bytes.Repeat([]byte{0xff}, 256))
	d.Zero(64, 128)
	for i := uint64(64); i < 192; i++ {
		if d.Bytes(i, 1)[0] != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	if d.Bytes(0, 1)[0] != 0xff || d.Bytes(200, 1)[0] != 0xff {
		t.Fatal("Zero touched bytes outside its range")
	}
}

func TestCompareAndSwap(t *testing.T) {
	d := New(4096)
	d.Store64(0, 5)
	if d.CompareAndSwap64(0, 4, 9) {
		t.Fatal("CAS succeeded with wrong old value")
	}
	if !d.CompareAndSwap64(0, 5, 9) {
		t.Fatal("CAS failed with right old value")
	}
	if d.Load64(0) != 9 {
		t.Fatalf("value after CAS = %d", d.Load64(0))
	}
}

func TestAtomicOrAnd(t *testing.T) {
	d := New(4096)
	d.Store64(8, 0b0101)
	if old := d.AtomicOr64(8, 0b0010); old != 0b0101 {
		t.Fatalf("Or old = %b", old)
	}
	if d.Load64(8) != 0b0111 {
		t.Fatalf("after Or = %b", d.Load64(8))
	}
	if old := d.AtomicAnd64(8, 0b0011); old != 0b0111 {
		t.Fatalf("And old = %b", old)
	}
	if d.Load64(8) != 0b0011 {
		t.Fatalf("after And = %b", d.Load64(8))
	}
}

func TestCrashDropsUnfencedStores(t *testing.T) {
	d := New(4096)
	d.Store64(0, 1)
	d.SetMode(ModeTracked) // snapshot: word0=1 durable
	d.Store64(0, 2)        // not flushed
	d.Store64(64, 3)
	d.Persist(64, 8) // flushed + fenced
	d.Crash()
	if got := d.Load64(0); got != 1 {
		t.Fatalf("unfenced store survived crash: word0 = %d, want 1", got)
	}
	if got := d.Load64(64); got != 3 {
		t.Fatalf("fenced store lost: word64 = %d, want 3", got)
	}
}

func TestFlushWithoutFenceNotDurable(t *testing.T) {
	d := New(4096)
	d.SetMode(ModeTracked)
	d.Store64(0, 7)
	d.Flush(0, 8) // no fence
	d.Crash()
	if got := d.Load64(0); got != 0 {
		t.Fatalf("flushed-but-unfenced store survived: %d", got)
	}
}

func TestNTStoreDurableAfterFence(t *testing.T) {
	d := New(4096)
	d.SetMode(ModeTracked)
	d.NTStore(128, []byte{1, 2, 3, 4})
	d.Fence()
	d.Crash()
	got := make([]byte, 4)
	d.ReadAt(128, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("ntstore+fence lost: %v", got)
	}
}

func TestNTStoreWithoutFenceLost(t *testing.T) {
	d := New(4096)
	d.SetMode(ModeTracked)
	d.NTStore(128, []byte{9, 9, 9, 9})
	d.Crash()
	got := make([]byte, 4)
	d.ReadAt(128, got)
	if !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatalf("ntstore without fence survived strict crash: %v", got)
	}
}

func TestCrashLineGranularity(t *testing.T) {
	// Two stores to the same cache line: persisting the line persists both.
	d := New(4096)
	d.SetMode(ModeTracked)
	d.Store64(0, 11)
	d.Store64(8, 22)
	d.Persist(0, 8) // flushes the whole 64-byte line
	d.Crash()
	if d.Load64(0) != 11 || d.Load64(8) != 22 {
		t.Fatalf("line-granular persistence violated: %d %d", d.Load64(0), d.Load64(8))
	}
}

func TestCrashPartialProducesLegalStates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		d := New(4096)
		d.SetMode(ModeTracked)
		d.Store64(0, 123)   // pending
		d.Store64(512, 456) // staged (flushed, no fence)
		d.Flush(512, 8)
		d.CrashPartial(rng)
		// Each word must be either the old value (0) or the new value.
		if v := d.Load64(0); v != 0 && v != 123 {
			t.Fatalf("trial %d: torn word0 = %d", trial, v)
		}
		if v := d.Load64(512); v != 0 && v != 456 {
			t.Fatalf("trial %d: torn word512 = %d", trial, v)
		}
	}
}

func TestDirtyLines(t *testing.T) {
	d := New(4096)
	d.SetMode(ModeTracked)
	if n := d.DirtyLines(); n != 0 {
		t.Fatalf("fresh tracked device has %d dirty lines", n)
	}
	d.Store64(0, 1)
	d.Store64(256, 1)
	if n := d.DirtyLines(); n != 2 {
		t.Fatalf("dirty lines = %d, want 2", n)
	}
	d.Persist(0, 8)
	if n := d.DirtyLines(); n != 1 {
		t.Fatalf("dirty lines after persist = %d, want 1", n)
	}
	d.Flush(256, 8)
	d.Fence()
	if n := d.DirtyLines(); n != 0 {
		t.Fatalf("dirty lines after full persist = %d, want 0", n)
	}
}

func TestStatsCounters(t *testing.T) {
	d := New(4096)
	d.WriteAt(0, make([]byte, 100))
	d.ReadAt(0, make([]byte, 50))
	d.NTStore(512, make([]byte, 64))
	d.Flush(0, 100)
	d.Fence()
	if d.Stats.StoreBytes.Load() != 100 {
		t.Fatalf("StoreBytes = %d", d.Stats.StoreBytes.Load())
	}
	if d.Stats.LoadBytes.Load() != 50 {
		t.Fatalf("LoadBytes = %d", d.Stats.LoadBytes.Load())
	}
	if d.Stats.NTBytes.Load() != 64 {
		t.Fatalf("NTBytes = %d", d.Stats.NTBytes.Load())
	}
	if d.Stats.Flushes.Load() != 2 { // 100 bytes spans 2 lines
		t.Fatalf("Flushes = %d", d.Stats.Flushes.Load())
	}
	if d.Stats.Fences.Load() != 1 {
		t.Fatalf("Fences = %d", d.Stats.Fences.Load())
	}
}

func TestConcurrentAtomicAdd(t *testing.T) {
	d := New(4096)
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				d.AtomicAdd64(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := d.Load64(0); got != workers*iters {
		t.Fatalf("concurrent add = %d, want %d", got, workers*iters)
	}
}

func TestConcurrentTrackedStores(t *testing.T) {
	// Tracked-mode bookkeeping must be safe under concurrent writers to
	// disjoint lines.
	d := New(1 << 16)
	d.SetMode(ModeTracked)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(w) * 8192
			for i := uint64(0); i < 100; i++ {
				d.Store64(base+i*64, i)
				d.Persist(base+i*64, 8)
			}
		}()
	}
	wg.Wait()
	d.Crash()
	for w := uint64(0); w < 4; w++ {
		for i := uint64(0); i < 100; i++ {
			if got := d.Load64(w*8192 + i*64); got != i {
				t.Fatalf("worker %d word %d = %d", w, i, got)
			}
		}
	}
}

// TestQuickPersistedSurvivesCrash property: any byte pattern that was
// written and persisted is intact after a crash, regardless of what other
// unpersisted writes happened around it.
func TestQuickPersistedSurvivesCrash(t *testing.T) {
	f := func(data []byte, noiseOff uint16, noise []byte) bool {
		if len(data) == 0 || len(data) > 1024 {
			return true
		}
		d := New(1 << 16)
		d.SetMode(ModeTracked)
		const off = 4096
		d.WriteAt(off, data)
		d.Persist(off, uint64(len(data)))
		// Unpersisted noise elsewhere (may share no lines with data).
		no := uint64(noiseOff) % (1 << 15)
		if len(noise) > 0 && (no+uint64(len(noise)) <= off || no >= off+uint64(len(data))+CachelineSize) {
			// Only write noise if it cannot share a cache line with data.
			if no+uint64(len(noise)) < (1 << 16) {
				d.WriteAt(no, noise)
			}
		}
		d.Crash()
		got := make([]byte, len(data))
		d.ReadAt(off, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashNeverInventsData property: after a strict crash, every byte
// equals either its pre-write persistent value or a value that was
// explicitly persisted; nothing else can appear.
func TestQuickCrashNeverInventsData(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(1 << 14)
		d.SetMode(ModeTracked)
		type write struct {
			off uint64
			val byte
		}
		var all []write
		written := map[uint64]map[byte]bool{}
		for i := 0; i < int(ops); i++ {
			off := uint64(rng.Intn(1<<14-8)) &^ 7
			val := byte(rng.Intn(256))
			d.WriteAt(off, []byte{val})
			if written[off] == nil {
				written[off] = map[byte]bool{}
			}
			written[off][val] = true
			all = append(all, write{off, val})
			if rng.Intn(2) == 0 {
				d.Persist(off, 1)
			}
		}
		d.Crash()
		// After a crash a byte holds either its initial value (0) or some
		// value that was actually written there — never invented data.
		for _, w := range all {
			b := make([]byte, 1)
			d.ReadAt(w.off, b)
			if b[0] != 0 && !written[w.off][b[0]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStore64Fast(b *testing.B) {
	d := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Store64(uint64(i%1024)*8, uint64(i))
	}
}

func BenchmarkNTStore4K(b *testing.B) {
	d := New(1 << 24)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		d.NTStore(uint64(i%4096)*4096, buf)
		d.Fence()
	}
}
