package vfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"simurgh/internal/fsapi"
)

// memFS is a trivial in-memory InnerFS for testing the VFS layer in
// isolation; it counts Lookup calls so dcache behaviour is observable.
type memFS struct {
	mu      sync.Mutex
	nodes   map[NodeID]*memNode
	next    NodeID
	lookups int
}

type memNode struct {
	attr     Attr
	children map[string]NodeID
	data     []byte
	target   string
}

func newMemFS() *memFS {
	m := &memFS{nodes: map[NodeID]*memNode{}, next: 1}
	m.nodes[1] = &memNode{
		attr:     Attr{Mode: fsapi.ModeDir | 0o755, Nlink: 2},
		children: map[string]NodeID{},
	}
	m.next = 2
	return m
}

func (m *memFS) Name() string { return "memfs" }
func (m *memFS) Root() NodeID { return 1 }

func (m *memFS) Lookup(dir NodeID, name string) (NodeID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lookups++
	d, ok := m.nodes[dir]
	if !ok || d.children == nil {
		return 0, fsapi.ErrNotExist
	}
	n, ok := d.children[name]
	if !ok {
		return 0, fsapi.ErrNotExist
	}
	return n, nil
}

func (m *memFS) GetAttr(n NodeID) (Attr, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nd, ok := m.nodes[n]
	if !ok {
		return Attr{}, fsapi.ErrNotExist
	}
	return nd.attr, nil
}

func (m *memFS) create(dir NodeID, name string, mode, uid, gid uint32) (NodeID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.nodes[dir]
	if _, exists := d.children[name]; exists {
		return 0, fsapi.ErrExist
	}
	id := m.next
	m.next++
	nd := &memNode{attr: Attr{Mode: mode, UID: uid, GID: gid, Nlink: 1}}
	if fsapi.IsDir(mode) {
		nd.children = map[string]NodeID{}
		nd.attr.Nlink = 2
	}
	m.nodes[id] = nd
	d.children[name] = id
	return id, nil
}

func (m *memFS) Create(dir NodeID, name string, mode, uid, gid uint32) (NodeID, error) {
	return m.create(dir, name, mode, uid, gid)
}

func (m *memFS) Mkdir(dir NodeID, name string, mode, uid, gid uint32) (NodeID, error) {
	return m.create(dir, name, mode, uid, gid)
}

func (m *memFS) Symlink(dir NodeID, name, target string, uid, gid uint32) (NodeID, error) {
	id, err := m.create(dir, name, fsapi.ModeSymlink|0o777, uid, gid)
	if err == nil {
		m.nodes[id].target = target
	}
	return id, err
}

func (m *memFS) Readlink(n NodeID) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nodes[n].target, nil
}

func (m *memFS) Link(dir NodeID, name string, target NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.nodes[dir]
	if _, exists := d.children[name]; exists {
		return fsapi.ErrExist
	}
	d.children[name] = target
	m.nodes[target].attr.Nlink++
	return nil
}

func (m *memFS) Unlink(dir NodeID, name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.nodes[dir]
	id, ok := d.children[name]
	if !ok {
		return fsapi.ErrNotExist
	}
	if fsapi.IsDir(m.nodes[id].attr.Mode) {
		return fsapi.ErrIsDir
	}
	delete(d.children, name)
	return nil
}

func (m *memFS) Rmdir(dir NodeID, name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.nodes[dir]
	id, ok := d.children[name]
	if !ok {
		return fsapi.ErrNotExist
	}
	if len(m.nodes[id].children) != 0 {
		return fsapi.ErrNotEmpty
	}
	delete(d.children, name)
	return nil
}

func (m *memFS) Rename(odir NodeID, oname string, ndir NodeID, nname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	od := m.nodes[odir]
	id, ok := od.children[oname]
	if !ok {
		return fsapi.ErrNotExist
	}
	delete(od.children, oname)
	m.nodes[ndir].children[nname] = id
	return nil
}

func (m *memFS) ReadDir(dir NodeID) ([]fsapi.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []fsapi.DirEntry
	for name, id := range m.nodes[dir].children {
		out = append(out, fsapi.DirEntry{Name: name, Ino: uint64(id), Mode: m.nodes[id].attr.Mode})
	}
	return out, nil
}

func (m *memFS) ReadAt(n NodeID, p []byte, off uint64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.nodes[n].data
	if off >= uint64(len(d)) {
		return 0, nil
	}
	return copy(p, d[off:]), nil
}

func (m *memFS) WriteAt(n NodeID, p []byte, off uint64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nd := m.nodes[n]
	need := off + uint64(len(p))
	if uint64(len(nd.data)) < need {
		nd.data = append(nd.data, make([]byte, need-uint64(len(nd.data)))...)
	}
	copy(nd.data[off:], p)
	if need > nd.attr.Size {
		nd.attr.Size = need
	}
	return len(p), nil
}

func (m *memFS) Truncate(n NodeID, size uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	nd := m.nodes[n]
	if size < uint64(len(nd.data)) {
		nd.data = nd.data[:size]
	}
	nd.attr.Size = size
	return nil
}

func (m *memFS) Fallocate(n NodeID, size uint64) error { return m.Truncate(n, size) }
func (m *memFS) Fsync(n NodeID) error                  { return nil }

func (m *memFS) SetAttr(n NodeID, perm *uint32, atime, mtime *int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	nd := m.nodes[n]
	if perm != nil {
		nd.attr.Mode = nd.attr.Mode&fsapi.ModeTypeMask | *perm
	}
	if atime != nil {
		nd.attr.Atime = *atime
	}
	if mtime != nil {
		nd.attr.Mtime = *mtime
	}
	return nil
}

func TestDcacheAvoidsRepeatedLookups(t *testing.T) {
	inner := newMemFS()
	v := New(inner, nil)
	c, _ := v.Attach(fsapi.Root)
	c.Mkdir("/a", 0o755)
	c.Mkdir("/a/b", 0o755)
	c.Create("/a/b/f", 0o644)
	inner.mu.Lock()
	inner.lookups = 0
	inner.mu.Unlock()
	for i := 0; i < 100; i++ {
		if _, err := c.Stat("/a/b/f"); err != nil {
			t.Fatal(err)
		}
	}
	inner.mu.Lock()
	n := inner.lookups
	inner.mu.Unlock()
	if n > 3 {
		t.Fatalf("dcache miss rate too high: %d inner lookups for 100 stats", n)
	}
}

func TestDcacheInvalidatedOnUnlinkAndRename(t *testing.T) {
	inner := newMemFS()
	v := New(inner, nil)
	c, _ := v.Attach(fsapi.Root)
	c.Create("/f", 0o644)
	c.Stat("/f") // warm the cache
	if err := c.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stale dcache entry served after unlink: %v", err)
	}
	c.Create("/g", 0o644)
	c.Stat("/g")
	if err := c.Rename("/g", "/h"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/g"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stale dcache entry served after rename: %v", err)
	}
	if _, err := c.Stat("/h"); err != nil {
		t.Fatal(err)
	}
}

func TestVFSPermissionEnforcement(t *testing.T) {
	inner := newMemFS()
	v := New(inner, nil)
	root, _ := v.Attach(fsapi.Root)
	root.Chmod("/", 0o755)
	user, _ := v.Attach(fsapi.Cred{UID: 5, GID: 5})
	if _, err := user.Create("/f", 0o644); !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("create in 0755 root by non-owner = %v", err)
	}
}

func TestVFSConcurrentCreatesDistinctDirs(t *testing.T) {
	inner := newMemFS()
	v := New(inner, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := v.Attach(fsapi.Root)
			dir := fmt.Sprintf("/d%d", w)
			if err := c.Mkdir(dir, 0o755); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 100; i++ {
				if _, err := c.Create(fmt.Sprintf("%s/f%d", dir, i), 0o644); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c, _ := v.Attach(fsapi.Root)
	for w := 0; w < 4; w++ {
		ents, err := c.ReadDir(fmt.Sprintf("/d%d", w))
		if err != nil || len(ents) != 100 {
			t.Fatalf("d%d: %d entries (%v)", w, len(ents), err)
		}
	}
}

func TestVFSSymlinkResolution(t *testing.T) {
	inner := newMemFS()
	v := New(inner, nil)
	c, _ := v.Attach(fsapi.Root)
	c.Mkdir("/real", 0o755)
	c.Create("/real/file", 0o644)
	c.Symlink("/real", "/alias")
	if _, err := c.Stat("/alias/file"); err != nil {
		t.Fatalf("stat through symlinked dir: %v", err)
	}
	lst, _ := c.Lstat("/alias")
	if !fsapi.IsSymlink(lst.Mode) {
		t.Fatal("Lstat should not follow")
	}
	// Loop detection.
	c.Symlink("/l2", "/l1")
	c.Symlink("/l1", "/l2")
	if _, err := c.Stat("/l1"); !errors.Is(err, fsapi.ErrLoop) {
		t.Fatalf("loop err = %v", err)
	}
}

func TestVFSSeekAndAppend(t *testing.T) {
	inner := newMemFS()
	v := New(inner, nil)
	c, _ := v.Attach(fsapi.Root)
	fd, _ := c.Open("/f", fsapi.OCreate|fsapi.ORdwr|fsapi.OAppend, 0o644)
	c.Write(fd, []byte("aaa"))
	c.Write(fd, []byte("bbb"))
	if pos, _ := c.Seek(fd, 0, fsapi.SeekEnd); pos != 6 {
		t.Fatalf("end = %d", pos)
	}
	buf := make([]byte, 6)
	n, _ := c.Pread(fd, buf, 0)
	if string(buf[:n]) != "aaabbb" {
		t.Fatalf("content = %q", buf[:n])
	}
}
