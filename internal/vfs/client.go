package vfs

import (
	"io"

	"simurgh/internal/fsapi"
)

// fsapi.Client implementation. Every method charges one syscall and routes
// through the kernel-substrate locks before reaching the inner file system.

// Create implements fsapi.Client.
func (c *Client) Create(path string, perm uint32) (fsapi.FD, error) {
	return c.Open(path, fsapi.OCreate|fsapi.OWronly|fsapi.OTrunc, perm)
}

// Open implements fsapi.Client.
func (c *Client) Open(path string, flags fsapi.OpenFlag, perm uint32) (fsapi.FD, error) {
	c.syscall()
	v := c.v
	n, err := c.resolve(path, true)
	switch {
	case err == nil:
		if flags&(fsapi.OCreate|fsapi.OExcl) == fsapi.OCreate|fsapi.OExcl {
			return -1, fsapi.ErrExist
		}
	case err == fsapi.ErrNotExist && flags&fsapi.OCreate != 0:
		parent, name, perr := c.resolveParent(path, true)
		if perr != nil {
			return -1, perr
		}
		// Directory mutation: serialize on the parent's inode mutex.
		vn := v.vnode(parent)
		vn.dirMu.Lock()
		n, err = v.inner.Create(parent, name, fsapi.ModeRegular|perm&fsapi.ModePermMask, c.cred.UID, c.cred.GID)
		if err == nil {
			v.dcacheInsert(parent, name, n)
		}
		vn.dirMu.Unlock()
		if err == fsapi.ErrExist && flags&fsapi.OExcl == 0 {
			n, err = c.resolve(path, true)
		}
		if err != nil {
			return -1, err
		}
	default:
		return -1, err
	}
	attr, err := v.inner.GetAttr(n)
	if err != nil {
		return -1, err
	}
	if fsapi.IsDir(attr.Mode) && flags&(fsapi.OWronly|fsapi.ORdwr) != 0 {
		return -1, fsapi.ErrIsDir
	}
	var want uint32
	if flags&(fsapi.OWronly|fsapi.ORdwr) != 0 {
		want |= fsapi.AccessWrite
	}
	if flags&fsapi.OWronly == 0 {
		want |= fsapi.AccessRead
	}
	if err := fsapi.CheckPerm(c.cred, attr.UID, attr.GID, attr.Mode, want); err != nil {
		return -1, err
	}
	if flags&fsapi.OTrunc != 0 && fsapi.IsRegular(attr.Mode) && flags&(fsapi.OWronly|fsapi.ORdwr) != 0 {
		vn := v.vnode(n)
		vn.rw.Lock()
		err := v.inner.Truncate(n, 0)
		vn.rw.Unlock()
		if err != nil {
			return -1, err
		}
	}
	return c.install(n, flags), nil
}

// Close implements fsapi.Client.
func (c *Client) Close(fd fsapi.FD) error {
	c.syscall()
	if _, ok := c.files.LoadAndDelete(fd); !ok {
		return fsapi.ErrBadFD
	}
	return nil
}

// Read implements fsapi.Client.
func (c *Client) Read(fd fsapi.FD, p []byte) (int, error) {
	c.syscall()
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&fsapi.OWronly != 0 {
		return 0, fsapi.ErrWriteOnly
	}
	pos := of.pos.Load()
	n, err := c.readShared(of.node, p, pos)
	of.pos.Store(pos + uint64(n))
	if err == nil && n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, err
}

// Pread implements fsapi.Client.
func (c *Client) Pread(fd fsapi.FD, p []byte, off uint64) (int, error) {
	c.syscall()
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&fsapi.OWronly != 0 {
		return 0, fsapi.ErrWriteOnly
	}
	n, err := c.readShared(of.node, p, off)
	if err == nil && n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, err
}

// readShared takes i_rwsem for reading — an atomic RMW on the semaphore
// word that all readers of the inode share.
func (c *Client) readShared(n NodeID, p []byte, off uint64) (int, error) {
	vn := c.v.vnode(n)
	vn.rw.RLock()
	got, err := c.v.inner.ReadAt(n, p, off)
	vn.rw.RUnlock()
	return got, err
}

// Write implements fsapi.Client.
func (c *Client) Write(fd fsapi.FD, p []byte) (int, error) {
	c.syscall()
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(fsapi.OWronly|fsapi.ORdwr) == 0 {
		return 0, fsapi.ErrReadOnly
	}
	vn := c.v.vnode(of.node)
	vn.rw.Lock()
	defer vn.rw.Unlock()
	pos := of.pos.Load()
	if of.append {
		attr, err := c.v.inner.GetAttr(of.node)
		if err != nil {
			return 0, err
		}
		pos = attr.Size
	}
	n, err := c.v.inner.WriteAt(of.node, p, pos)
	of.pos.Store(pos + uint64(n))
	return n, err
}

// Pwrite implements fsapi.Client.
func (c *Client) Pwrite(fd fsapi.FD, p []byte, off uint64) (int, error) {
	c.syscall()
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(fsapi.OWronly|fsapi.ORdwr) == 0 {
		return 0, fsapi.ErrReadOnly
	}
	vn := c.v.vnode(of.node)
	vn.rw.Lock()
	defer vn.rw.Unlock()
	return c.v.inner.WriteAt(of.node, p, off)
}

// Seek implements fsapi.Client.
func (c *Client) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	c.syscall()
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case fsapi.SeekSet:
	case fsapi.SeekCur:
		base = int64(of.pos.Load())
	case fsapi.SeekEnd:
		attr, err := c.v.inner.GetAttr(of.node)
		if err != nil {
			return 0, err
		}
		base = int64(attr.Size)
	default:
		return 0, fsapi.ErrInval
	}
	np := base + off
	if np < 0 {
		return 0, fsapi.ErrInval
	}
	of.pos.Store(uint64(np))
	return np, nil
}

// Fsync implements fsapi.Client.
func (c *Client) Fsync(fd fsapi.FD) error {
	c.syscall()
	of, err := c.file(fd)
	if err != nil {
		return err
	}
	return c.v.inner.Fsync(of.node)
}

// Ftruncate implements fsapi.Client.
func (c *Client) Ftruncate(fd fsapi.FD, size uint64) error {
	c.syscall()
	of, err := c.file(fd)
	if err != nil {
		return err
	}
	vn := c.v.vnode(of.node)
	vn.rw.Lock()
	defer vn.rw.Unlock()
	return c.v.inner.Truncate(of.node, size)
}

// Fallocate implements fsapi.Client.
func (c *Client) Fallocate(fd fsapi.FD, size uint64) error {
	c.syscall()
	of, err := c.file(fd)
	if err != nil {
		return err
	}
	return c.v.inner.Fallocate(of.node, size)
}

// Fstat implements fsapi.Client.
func (c *Client) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	c.syscall()
	of, err := c.file(fd)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return c.statNode(of.node)
}

func (c *Client) statNode(n NodeID) (fsapi.Stat, error) {
	attr, err := c.v.inner.GetAttr(n)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return fsapi.Stat{
		Ino: uint64(n), Mode: attr.Mode, UID: attr.UID, GID: attr.GID,
		Nlink: attr.Nlink, Size: attr.Size,
		Atime: attr.Atime, Mtime: attr.Mtime, Ctime: attr.Ctime,
	}, nil
}

// Stat implements fsapi.Client.
func (c *Client) Stat(path string) (fsapi.Stat, error) {
	c.syscall()
	n, err := c.resolve(path, true)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return c.statNode(n)
}

// Lstat implements fsapi.Client.
func (c *Client) Lstat(path string) (fsapi.Stat, error) {
	c.syscall()
	n, err := c.resolve(path, false)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return c.statNode(n)
}

// Mkdir implements fsapi.Client.
func (c *Client) Mkdir(path string, perm uint32) error {
	c.syscall()
	parent, name, err := c.resolveParent(path, true)
	if err != nil {
		return err
	}
	vn := c.v.vnode(parent)
	vn.dirMu.Lock()
	defer vn.dirMu.Unlock()
	n, err := c.v.inner.Mkdir(parent, name, fsapi.ModeDir|perm&fsapi.ModePermMask, c.cred.UID, c.cred.GID)
	if err != nil {
		return err
	}
	c.v.dcacheInsert(parent, name, n)
	return nil
}

// Rmdir implements fsapi.Client.
func (c *Client) Rmdir(path string) error {
	c.syscall()
	parent, name, err := c.resolveParent(path, true)
	if err != nil {
		return err
	}
	vn := c.v.vnode(parent)
	vn.dirMu.Lock()
	defer vn.dirMu.Unlock()
	if err := c.v.inner.Rmdir(parent, name); err != nil {
		return err
	}
	c.v.dcacheRemove(parent, name)
	return nil
}

// Unlink implements fsapi.Client.
func (c *Client) Unlink(path string) error {
	c.syscall()
	parent, name, err := c.resolveParent(path, true)
	if err != nil {
		return err
	}
	vn := c.v.vnode(parent)
	vn.dirMu.Lock()
	defer vn.dirMu.Unlock()
	if err := c.v.inner.Unlink(parent, name); err != nil {
		return err
	}
	c.v.dcacheRemove(parent, name)
	return nil
}

// Rename implements fsapi.Client: the global rename mutex plus both
// directories' inode mutexes, exactly the kernel's locking discipline.
func (c *Client) Rename(oldPath, newPath string) error {
	c.syscall()
	oldParent, oldName, err := c.resolveParent(oldPath, true)
	if err != nil {
		return err
	}
	newParent, newName, err := c.resolveParent(newPath, true)
	if err != nil {
		return err
	}
	if oldParent == newParent && oldName == newName {
		return nil
	}
	c.v.renameMu.Lock()
	defer c.v.renameMu.Unlock()
	v1, v2 := c.v.vnode(oldParent), c.v.vnode(newParent)
	if oldParent == newParent {
		v1.dirMu.Lock()
		defer v1.dirMu.Unlock()
	} else if oldParent < newParent {
		v1.dirMu.Lock()
		v2.dirMu.Lock()
		defer v1.dirMu.Unlock()
		defer v2.dirMu.Unlock()
	} else {
		v2.dirMu.Lock()
		v1.dirMu.Lock()
		defer v2.dirMu.Unlock()
		defer v1.dirMu.Unlock()
	}
	if err := c.v.inner.Rename(oldParent, oldName, newParent, newName); err != nil {
		return err
	}
	c.v.dcacheRemove(oldParent, oldName)
	c.v.dcacheRemove(newParent, newName)
	return nil
}

// Symlink implements fsapi.Client.
func (c *Client) Symlink(target, linkPath string) error {
	c.syscall()
	parent, name, err := c.resolveParent(linkPath, true)
	if err != nil {
		return err
	}
	vn := c.v.vnode(parent)
	vn.dirMu.Lock()
	defer vn.dirMu.Unlock()
	n, err := c.v.inner.Symlink(parent, name, target, c.cred.UID, c.cred.GID)
	if err != nil {
		return err
	}
	c.v.dcacheInsert(parent, name, n)
	return nil
}

// Link implements fsapi.Client.
func (c *Client) Link(oldPath, newPath string) error {
	c.syscall()
	target, err := c.resolve(oldPath, true)
	if err != nil {
		return err
	}
	attr, err := c.v.inner.GetAttr(target)
	if err != nil {
		return err
	}
	if fsapi.IsDir(attr.Mode) {
		return fsapi.ErrIsDir
	}
	parent, name, err := c.resolveParent(newPath, true)
	if err != nil {
		return err
	}
	vn := c.v.vnode(parent)
	vn.dirMu.Lock()
	defer vn.dirMu.Unlock()
	if err := c.v.inner.Link(parent, name, target); err != nil {
		return err
	}
	c.v.dcacheInsert(parent, name, target)
	return nil
}

// Readlink implements fsapi.Client.
func (c *Client) Readlink(path string) (string, error) {
	c.syscall()
	n, err := c.resolve(path, false)
	if err != nil {
		return "", err
	}
	attr, err := c.v.inner.GetAttr(n)
	if err != nil {
		return "", err
	}
	if !fsapi.IsSymlink(attr.Mode) {
		return "", fsapi.ErrInval
	}
	return c.v.inner.Readlink(n)
}

// ReadDir implements fsapi.Client.
func (c *Client) ReadDir(path string) ([]fsapi.DirEntry, error) {
	c.syscall()
	n, err := c.resolve(path, true)
	if err != nil {
		return nil, err
	}
	attr, err := c.v.inner.GetAttr(n)
	if err != nil {
		return nil, err
	}
	if !fsapi.IsDir(attr.Mode) {
		return nil, fsapi.ErrNotDir
	}
	if err := fsapi.CheckPerm(c.cred, attr.UID, attr.GID, attr.Mode, fsapi.AccessRead); err != nil {
		return nil, err
	}
	vn := c.v.vnode(n)
	vn.dirMu.Lock()
	defer vn.dirMu.Unlock()
	return c.v.inner.ReadDir(n)
}

// Chmod implements fsapi.Client.
func (c *Client) Chmod(path string, perm uint32) error {
	c.syscall()
	n, err := c.resolve(path, true)
	if err != nil {
		return err
	}
	attr, err := c.v.inner.GetAttr(n)
	if err != nil {
		return err
	}
	if c.cred.UID != 0 && c.cred.UID != attr.UID {
		return fsapi.ErrPerm
	}
	p := perm & fsapi.ModePermMask
	return c.v.inner.SetAttr(n, &p, nil, nil)
}

// Utimes implements fsapi.Client.
func (c *Client) Utimes(path string, atime, mtime int64) error {
	c.syscall()
	n, err := c.resolve(path, true)
	if err != nil {
		return err
	}
	attr, err := c.v.inner.GetAttr(n)
	if err != nil {
		return err
	}
	if c.cred.UID != 0 && c.cred.UID != attr.UID {
		return fsapi.ErrPerm
	}
	return c.v.inner.SetAttr(n, nil, &atime, &mtime)
}

// Detach implements fsapi.Client.
func (c *Client) Detach() error {
	c.files.Range(func(k, _ any) bool {
		c.files.Delete(k)
		return true
	})
	return nil
}
