// Package vfs simulates the Linux kernel storage-stack mechanisms the paper
// identifies as the scalability bottlenecks of kernel file systems (§2, §5):
//
//   - a syscall entry/exit cost on every operation (calibrated spin);
//   - a dentry cache whose entries are reference-counted with atomic
//     operations (lockref), so path walks over shared components contend on
//     the same cache lines exactly like the real dcache (Fig 7f);
//   - a per-directory inode mutex serializing create/unlink/rename within a
//     directory — the reason kernel file systems flatline in shared
//     directories (Fig 7b/7d);
//   - a global rename mutex (s_vfs_rename_mutex);
//   - a per-inode read/write semaphore (i_rwsem) whose reader count is an
//     atomic RMW, limiting shared-file read scalability (Fig 7i).
//
// Baseline file systems implement the InnerFS interface and are mounted
// under a VFS; Simurgh bypasses this package entirely.
package vfs

import (
	"sync"
	"sync/atomic"

	"simurgh/internal/cost"
	"simurgh/internal/fsapi"
)

// NodeID identifies an inode within an inner file system.
type NodeID uint64

// Attr is the attribute set VFS needs for permission checks and stat.
type Attr struct {
	Mode  uint32
	UID   uint32
	GID   uint32
	Nlink uint32
	Size  uint64
	Atime int64
	Mtime int64
	Ctime int64
}

// InnerFS is the interface a kernel file system exposes to the VFS: single-
// component operations called after path resolution and locking.
type InnerFS interface {
	Name() string
	Root() NodeID
	Lookup(dir NodeID, name string) (NodeID, error)
	GetAttr(n NodeID) (Attr, error)
	Create(dir NodeID, name string, mode, uid, gid uint32) (NodeID, error)
	Mkdir(dir NodeID, name string, mode, uid, gid uint32) (NodeID, error)
	Symlink(dir NodeID, name, target string, uid, gid uint32) (NodeID, error)
	Readlink(n NodeID) (string, error)
	Link(dir NodeID, name string, target NodeID) error
	Unlink(dir NodeID, name string) error
	Rmdir(dir NodeID, name string) error
	Rename(odir NodeID, oname string, ndir NodeID, nname string) error
	ReadDir(dir NodeID) ([]fsapi.DirEntry, error)
	ReadAt(n NodeID, p []byte, off uint64) (int, error)
	WriteAt(n NodeID, p []byte, off uint64) (int, error)
	Truncate(n NodeID, size uint64) error
	Fallocate(n NodeID, size uint64) error
	Fsync(n NodeID) error
	SetAttr(n NodeID, perm *uint32, atime, mtime *int64) error
}

// dentry is a cached name→inode mapping. Its reference count is bumped with
// atomic operations on every path-walk step, reproducing lockref cacheline
// contention on shared path components.
type dentry struct {
	node NodeID
	ref  atomic.Int64
}

type dkey struct {
	dir  NodeID
	name string
}

const dcacheShards = 64

type dcacheShard struct {
	mu sync.RWMutex
	m  map[dkey]*dentry
}

// vnode is the VFS-side in-memory inode: the directory mutex and the file
// rw-semaphore.
type vnode struct {
	dirMu sync.Mutex
	rw    sync.RWMutex
}

const vnodeShards = 64

type vnodeShard struct {
	mu sync.Mutex
	m  map[NodeID]*vnode
}

// VFS wraps an inner file system with the kernel-substrate behaviour.
type VFS struct {
	inner    InnerFS
	costM    *cost.Model
	dcache   [dcacheShards]dcacheShard
	vnodes   [vnodeShards]vnodeShard
	renameMu sync.Mutex
}

// New mounts inner under a simulated kernel storage stack. costM is charged
// one syscall per public operation (pass cost.KernelModel()).
func New(inner InnerFS, costM *cost.Model) *VFS {
	v := &VFS{inner: inner, costM: costM}
	for i := range v.dcache {
		v.dcache[i].m = make(map[dkey]*dentry)
	}
	for i := range v.vnodes {
		v.vnodes[i].m = make(map[NodeID]*vnode)
	}
	return v
}

// Name implements fsapi.FileSystem.
func (v *VFS) Name() string { return v.inner.Name() }

// Inner exposes the wrapped file system.
func (v *VFS) Inner() InnerFS { return v.inner }

func (v *VFS) vnode(n NodeID) *vnode {
	sh := &v.vnodes[uint64(n)%vnodeShards]
	sh.mu.Lock()
	vn := sh.m[n]
	if vn == nil {
		vn = new(vnode)
		sh.m[n] = vn
	}
	sh.mu.Unlock()
	return vn
}

func dhash(k dkey) uint64 {
	h := uint64(k.dir) * 0x9e3779b97f4a7c15
	for i := 0; i < len(k.name); i++ {
		h = (h ^ uint64(k.name[i])) * 1099511628211
	}
	return h
}

// dcacheLookup returns the cached dentry, bumping its lockref.
func (v *VFS) dcacheLookup(dir NodeID, name string) (*dentry, bool) {
	k := dkey{dir, name}
	sh := &v.dcache[dhash(k)%dcacheShards]
	sh.mu.RLock()
	d, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		// lockref get/put: two atomic RMWs on the shared dentry cacheline.
		d.ref.Add(1)
		d.ref.Add(-1)
	}
	return d, ok
}

func (v *VFS) dcacheInsert(dir NodeID, name string, node NodeID) {
	k := dkey{dir, name}
	sh := &v.dcache[dhash(k)%dcacheShards]
	sh.mu.Lock()
	sh.m[k] = &dentry{node: node}
	sh.mu.Unlock()
}

func (v *VFS) dcacheRemove(dir NodeID, name string) {
	k := dkey{dir, name}
	sh := &v.dcache[dhash(k)%dcacheShards]
	sh.mu.Lock()
	delete(sh.m, k)
	sh.mu.Unlock()
}

// Client is one attached process.
type Client struct {
	v      *VFS
	cred   fsapi.Cred
	nextFD atomic.Int32
	files  sync.Map // fsapi.FD -> *openFile
}

type openFile struct {
	node   NodeID
	flags  fsapi.OpenFlag
	pos    atomic.Uint64
	append bool
}

// Attach implements fsapi.FileSystem.
func (v *VFS) Attach(cred fsapi.Cred) (fsapi.Client, error) {
	c := &Client{v: v, cred: cred}
	c.nextFD.Store(2)
	return c, nil
}

func (c *Client) syscall() { c.v.costM.Syscall() }

const maxSymlinkDepth = 10

// lookupStep resolves one component through the dcache, calling into the
// inner file system on a miss (under the parent's inode mutex, as the
// kernel does).
func (c *Client) lookupStep(dir NodeID, name string) (NodeID, error) {
	if d, ok := c.v.dcacheLookup(dir, name); ok {
		return d.node, nil
	}
	vn := c.v.vnode(dir)
	vn.dirMu.Lock()
	defer vn.dirMu.Unlock()
	if d, ok := c.v.dcacheLookup(dir, name); ok {
		return d.node, nil
	}
	n, err := c.v.inner.Lookup(dir, name)
	if err != nil {
		return 0, err
	}
	c.v.dcacheInsert(dir, name, n)
	return n, nil
}

// walk resolves components from start, enforcing exec permission and
// following symlinks.
func (c *Client) walk(start NodeID, comps []string, followLast bool, depth int) (NodeID, error) {
	v := c.v
	cur := start
	for i := 0; i < len(comps); i++ {
		attr, err := v.inner.GetAttr(cur)
		if err != nil {
			return 0, err
		}
		if !fsapi.IsDir(attr.Mode) {
			return 0, fsapi.ErrNotDir
		}
		if err := fsapi.CheckPerm(c.cred, attr.UID, attr.GID, attr.Mode, fsapi.AccessExec); err != nil {
			return 0, err
		}
		n, err := c.lookupStep(cur, comps[i])
		if err != nil {
			return 0, err
		}
		nattr, err := v.inner.GetAttr(n)
		if err != nil {
			return 0, err
		}
		if fsapi.IsSymlink(nattr.Mode) && (i < len(comps)-1 || followLast) {
			if depth >= maxSymlinkDepth {
				return 0, fsapi.ErrLoop
			}
			target, err := v.inner.Readlink(n)
			if err != nil {
				return 0, err
			}
			tcomps, err := fsapi.SplitPath(target)
			if err != nil {
				return 0, err
			}
			rest := comps[i+1:]
			next := cur
			if target != "" && target[0] == '/' {
				next = v.inner.Root()
			}
			return c.walk(next, append(append([]string{}, tcomps...), rest...), followLast, depth+1)
		}
		cur = n
	}
	return cur, nil
}

func (c *Client) resolve(path string, followLast bool) (NodeID, error) {
	comps, err := fsapi.SplitPath(path)
	if err != nil {
		return 0, err
	}
	return c.walk(c.v.inner.Root(), comps, followLast, 0)
}

// resolveParent returns the parent dir node and final name of path.
func (c *Client) resolveParent(path string, forWrite bool) (NodeID, string, error) {
	dir, name, err := fsapi.BaseDir(path)
	if err != nil {
		return 0, "", err
	}
	parent, err := c.walk(c.v.inner.Root(), dir, true, 0)
	if err != nil {
		return 0, "", err
	}
	attr, err := c.v.inner.GetAttr(parent)
	if err != nil {
		return 0, "", err
	}
	if !fsapi.IsDir(attr.Mode) {
		return 0, "", fsapi.ErrNotDir
	}
	want := fsapi.AccessExec
	if forWrite {
		want |= fsapi.AccessWrite
	}
	if err := fsapi.CheckPerm(c.cred, attr.UID, attr.GID, attr.Mode, want); err != nil {
		return 0, "", err
	}
	return parent, name, nil
}

func (c *Client) install(n NodeID, flags fsapi.OpenFlag) fsapi.FD {
	fd := fsapi.FD(c.nextFD.Add(1))
	c.files.Store(fd, &openFile{node: n, flags: flags, append: flags&fsapi.OAppend != 0})
	return fd
}

func (c *Client) file(fd fsapi.FD) (*openFile, error) {
	vv, ok := c.files.Load(fd)
	if !ok {
		return nil, fsapi.ErrBadFD
	}
	return vv.(*openFile), nil
}
