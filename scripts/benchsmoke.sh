#!/usr/bin/env bash
# Bench-smoke gate: run the wire codec and server steady-state benchmarks
# with -benchmem and fail if any benchmark reports nonzero allocs/op,
# unless it is listed in scripts/alloc_allowlist.txt. This pins the PR's
# zero-allocation hot-path guarantee in CI.
#
# The BenchmarkServer* pattern also covers the traced-but-unsampled path
# (BenchmarkServerPwriteTracedUnsampled): a node running with -trace must
# stay at 0 allocs/op for the ~1023/1024 of requests that carry no trace
# context.
set -euo pipefail
cd "$(dirname "$0")/.."

allow="scripts/alloc_allowlist.txt"

out=$(go test -run '^$' \
	-bench 'BenchmarkBatchCodec|BenchmarkResponseCodec|BenchmarkEntryCodec|BenchmarkServer|BenchmarkShip' \
	-benchmem -benchtime 2000x -count=1 \
	./internal/wire/ ./internal/server/ ./internal/replica/)
echo "$out"
echo

bad=0
while read -r name allocs; do
	if grep -vE '^#|^$' "$allow" | grep -qxF "$name"; then
		echo "allowlisted: $name ($allocs allocs/op)"
		continue
	fi
	echo "FAIL: $name allocates on the steady-state path ($allocs allocs/op)" >&2
	bad=1
done < <(echo "$out" | awk '/allocs\/op/ {
	n = $1; sub(/-[0-9]+$/, "", n)
	a = $(NF-1)
	if (a + 0 > 0) print n, a
}')

if [ "$bad" -eq 0 ]; then
	echo "bench-smoke: all steady-state benchmarks at 0 allocs/op"
fi
exit $bad
