// Benchmarks regenerating every table and figure of the paper at testing.B
// scale (cmd/simurghbench runs the full-size sweeps; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for measured results).
//
//	go test -bench=. -benchmem
package simurgh_test

import (
	"fmt"
	"math/rand"
	"testing"

	"simurgh/internal/apps/gitbench"
	"simurgh/internal/apps/tarbench"
	"simurgh/internal/bench"
	"simurgh/internal/core"
	"simurgh/internal/corpus"
	"simurgh/internal/filebench"
	"simurgh/internal/fsapi"
	"simurgh/internal/fxmark"
	"simurgh/internal/isa"
	"simurgh/internal/leveldb"
	"simurgh/internal/pmem"
	"simurgh/internal/ycsb"
)

// allFS is the comparison set used by per-figure sub-benchmarks.
var allFS = bench.FSNames

func mustFS(b *testing.B, name string, size uint64) fsapi.FileSystem {
	b.Helper()
	fs, err := bench.MakeFS(name, size)
	if err != nil {
		b.Fatal(err)
	}
	return fs
}

func mustClient(b *testing.B, fs fsapi.FileSystem) fsapi.Client {
	b.Helper()
	c, err := fs.Attach(fsapi.Root)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkISAProtectedCall regenerates the §3.3 gem5 cycle table as
// benchmark metrics: cycles per mechanism.
func BenchmarkISAProtectedCall(b *testing.B) {
	mem := isa.NewMemory()
	sup := isa.NewSupervisor(mem, 0x100000)
	addrs, err := sup.LoadProtected([]isa.ProtectedFunc{func(*isa.CPU) error { return nil }}, nil)
	if err != nil {
		b.Fatal(err)
	}
	cpu := isa.NewCPU(mem)
	for i := 0; i < b.N; i++ {
		if err := cpu.Jmpp(addrs[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cpu.Cycles)/float64(b.N), "cycles/op")
	b.ReportMetric(float64(isa.CyclesSyscallModern), "syscall-cycles")
	b.ReportMetric(float64(isa.CyclesCallRet), "call-cycles")
}

// benchMeta runs a single-thread metadata op loop per file system.
func benchMeta(b *testing.B, setup func(c fsapi.Client) error, op func(c fsapi.Client, i int) error) {
	for _, name := range allFS {
		b.Run(name, func(b *testing.B) {
			fs := mustFS(b, name, 512<<20)
			c := mustClient(b, fs)
			if setup != nil {
				if err := setup(c); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := op(c, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7aCreatePrivate: file creation in a private directory.
func BenchmarkFig7aCreatePrivate(b *testing.B) {
	benchMeta(b,
		func(c fsapi.Client) error { return c.Mkdir("/t0", 0o755) },
		func(c fsapi.Client, i int) error {
			fd, err := c.Create(fmt.Sprintf("/t0/f%d", i), 0o644)
			if err != nil {
				return err
			}
			return c.Close(fd)
		})
}

// BenchmarkFig7bCreateShared: file creation in a shared directory.
func BenchmarkFig7bCreateShared(b *testing.B) {
	benchMeta(b,
		func(c fsapi.Client) error { return c.Mkdir("/shared", 0o777) },
		func(c fsapi.Client, i int) error {
			fd, err := c.Create(fmt.Sprintf("/shared/f%d", i), 0o644)
			if err != nil {
				return err
			}
			return c.Close(fd)
		})
}

// BenchmarkFig7cUnlink: deleting empty files.
func BenchmarkFig7cUnlink(b *testing.B) {
	for _, name := range allFS {
		b.Run(name, func(b *testing.B) {
			fs := mustFS(b, name, 512<<20)
			c := mustClient(b, fs)
			for i := 0; i < b.N; i++ {
				if _, err := c.Create(fmt.Sprintf("/f%d", i), 0o644); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Unlink(fmt.Sprintf("/f%d", i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7dRenameShared: renames within one shared directory.
func BenchmarkFig7dRenameShared(b *testing.B) {
	benchMeta(b,
		func(c fsapi.Client) error {
			if err := c.Mkdir("/s", 0o777); err != nil {
				return err
			}
			_, err := c.Create("/s/gen0", 0o644)
			return err
		},
		func(c fsapi.Client, i int) error {
			return c.Rename(fmt.Sprintf("/s/gen%d", i), fmt.Sprintf("/s/gen%d", i+1))
		})
}

// BenchmarkFig7eResolvePrivate: opening a file five directories deep.
func BenchmarkFig7eResolvePrivate(b *testing.B) {
	benchMeta(b,
		func(c fsapi.Client) error {
			path := "/p"
			if err := c.Mkdir(path, 0o755); err != nil {
				return err
			}
			for d := 0; d < 4; d++ {
				path += "/d"
				if err := c.Mkdir(path, 0o755); err != nil {
					return err
				}
			}
			_, err := c.Create(path+"/target", 0o644)
			return err
		},
		func(c fsapi.Client, i int) error {
			fd, err := c.Open("/p/d/d/d/d/target", fsapi.ORdonly, 0)
			if err != nil {
				return err
			}
			return c.Close(fd)
		})
}

// BenchmarkFig7fResolveShared is the shared-path variant (single-threaded
// here; the contention effect needs the multi-thread harness).
func BenchmarkFig7fResolveShared(b *testing.B) {
	BenchmarkFig7eResolvePrivate(b)
}

// BenchmarkFig7gAppend: 4 kB appends.
func BenchmarkFig7gAppend(b *testing.B) {
	buf := make([]byte, 4096)
	for _, name := range allFS {
		b.Run(name, func(b *testing.B) {
			fs := mustFS(b, name, 512<<20)
			c := mustClient(b, fs)
			fd, err := c.Open("/app", fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if (uint64(i)+1)*4096 > 256<<20 {
					b.StopTimer()
					c.Ftruncate(fd, 0)
					b.StartTimer()
				}
				if _, err := c.Write(fd, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7hFallocate: 4 MB preallocations.
func BenchmarkFig7hFallocate(b *testing.B) {
	for _, name := range allFS {
		b.Run(name, func(b *testing.B) {
			fs := mustFS(b, name, 512<<20)
			c := mustClient(b, fs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("/fa%d", i)
				fd, err := c.Create(name, 0o644)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Fallocate(fd, 4<<20); err != nil {
					b.Fatal(err)
				}
				if err := c.Fsync(fd); err != nil {
					b.Fatal(err)
				}
				c.Close(fd)
				if err := c.Unlink(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRead measures random 4 kB reads of a prepared file.
func benchRead(b *testing.B, fileSize uint64) {
	for _, name := range allFS {
		b.Run(name, func(b *testing.B) {
			fs := mustFS(b, name, 512<<20)
			c := mustClient(b, fs)
			fd, err := c.Open("/big", fsapi.OCreate|fsapi.ORdwr, 0o644)
			if err != nil {
				b.Fatal(err)
			}
			chunk := make([]byte, 1<<20)
			for off := uint64(0); off < fileSize; off += uint64(len(chunk)) {
				if _, err := c.Pwrite(fd, chunk, off); err != nil {
					b.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(1))
			buf := make([]byte, 4096)
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := uint64(rng.Int63n(int64(fileSize - 4096)))
				if _, err := c.Pread(fd, buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7iReadShared: random reads of a shared file.
func BenchmarkFig7iReadShared(b *testing.B) { benchRead(b, 32<<20) }

// BenchmarkFig7jReadPrivate: random reads of a private file.
func BenchmarkFig7jReadPrivate(b *testing.B) { benchRead(b, 16<<20) }

// BenchmarkFig6CacheHotVsRandom contrasts the original FxMark read pattern
// (same block, cache-hot) with the adapted random pattern on Simurgh.
func BenchmarkFig6CacheHotVsRandom(b *testing.B) {
	run := func(b *testing.B, random bool) {
		fs := mustFS(b, "simurgh", 512<<20)
		c := mustClient(b, fs)
		fd, _ := c.Open("/big", fsapi.OCreate|fsapi.ORdwr, 0o644)
		chunk := make([]byte, 1<<20)
		for off := uint64(0); off < 32<<20; off += 1 << 20 {
			c.Pwrite(fd, chunk, off)
		}
		rng := rand.New(rand.NewSource(2))
		buf := make([]byte, 4096)
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var off uint64
			if random {
				off = uint64(rng.Int63n(32<<20 - 4096))
			}
			if _, err := c.Pread(fd, buf, off); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("original-cachehot", func(b *testing.B) { run(b, false) })
	b.Run("adapted-random", func(b *testing.B) { run(b, true) })
}

// BenchmarkFig7kOverwriteShared: random 4 kB overwrites, including the
// relaxed (no write lock) Simurgh variant.
func BenchmarkFig7kOverwriteShared(b *testing.B) {
	names := append(append([]string{}, allFS...), "simurgh-relaxed")
	for _, name := range names {
		b.Run(name, func(b *testing.B) {
			fs := mustFS(b, name, 512<<20)
			c := mustClient(b, fs)
			fd, err := c.Open("/big", fsapi.OCreate|fsapi.ORdwr, 0o644)
			if err != nil {
				b.Fatal(err)
			}
			chunk := make([]byte, 1<<20)
			for off := uint64(0); off < 32<<20; off += 1 << 20 {
				c.Pwrite(fd, chunk, off)
			}
			rng := rand.New(rand.NewSource(3))
			buf := make([]byte, 4096)
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := uint64(rng.Int63n(32<<20-4096)) &^ 4095
				if _, err := c.Pwrite(fd, buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7lWritePrivate: random 4 kB writes to a preallocated file.
func BenchmarkFig7lWritePrivate(b *testing.B) {
	for _, name := range allFS {
		b.Run(name, func(b *testing.B) {
			fs := mustFS(b, name, 512<<20)
			c := mustClient(b, fs)
			fd, err := c.Open("/w", fsapi.OCreate|fsapi.ORdwr, 0o644)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Fallocate(fd, 16<<20); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(4))
			buf := make([]byte, 4096)
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := uint64(rng.Int63n(16<<20-4096)) &^ 4095
				if _, err := c.Pwrite(fd, buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Filebench runs each personality on Simurgh; ops/s is the
// figure's metric (one iteration = one personality loop).
func BenchmarkFig8Filebench(b *testing.B) {
	for _, p := range filebench.Personalities() {
		b.Run(p.Name, func(b *testing.B) {
			fs := mustFS(b, "simurgh", 512<<20)
			res, err := filebench.Run(fs, p, filebench.Config{
				Files: 100, Threads: 4, Duration: 300 * 1e6, // 300ms
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Throughput(), "flowops/s")
		})
	}
}

// BenchmarkFig9YCSB runs each YCSB workload on Simurgh.
func BenchmarkFig9YCSB(b *testing.B) {
	for _, spec := range ycsb.Workloads {
		b.Run(spec.Name, func(b *testing.B) {
			fs := mustFS(b, "simurgh", 512<<20)
			res, err := ycsb.Run(fs, spec, ycsb.Config{Records: 1000, Ops: 3000, Threads: 2, ValueSize: 500})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.RunThroughput(), "ops/s")
		})
	}
}

// BenchmarkTable1Breakdown reports the execution-time split of YCSB LoadA
// (application / data copy / file system) for NOVA and Simurgh.
func BenchmarkTable1Breakdown(b *testing.B) {
	for _, name := range []string{"nova", "simurgh"} {
		b.Run(name, func(b *testing.B) {
			fs := mustFS(b, name, 512<<20)
			res, err := ycsb.RunLoadOnly(fs, ycsb.Config{Records: 3000, ValueSize: 500})
			if err != nil {
				b.Fatal(err)
			}
			total := res.App + res.Copy + res.FSTime
			if total > 0 {
				b.ReportMetric(100*float64(res.App)/float64(total), "app-%")
				b.ReportMetric(100*float64(res.Copy)/float64(total), "copy-%")
				b.ReportMetric(100*float64(res.FSTime)/float64(total), "fs-%")
			}
		})
	}
}

// BenchmarkFig11Tar packs and unpacks a source tree on Simurgh.
func BenchmarkFig11Tar(b *testing.B) {
	b.Run("pack", func(b *testing.B) {
		fs := mustFS(b, "simurgh", 512<<20)
		if _, err := tarbench.Prepare(fs, corpus.LinuxLike(1)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var bytes uint64
		for i := 0; i < b.N; i++ {
			res, err := tarbench.Pack(fs)
			if err != nil {
				b.Fatal(err)
			}
			bytes = res.Bytes
		}
		b.SetBytes(int64(bytes))
	})
	b.Run("unpack", func(b *testing.B) {
		fs := mustFS(b, "simurgh", 512<<20)
		if _, err := tarbench.Prepare(fs, corpus.LinuxLike(1)); err != nil {
			b.Fatal(err)
		}
		if _, err := tarbench.Pack(fs); err != nil {
			b.Fatal(err)
		}
		c := mustClient(b, fs)
		b.ResetTimer()
		var bytes uint64
		for i := 0; i < b.N; i++ {
			res, err := tarbench.Unpack(fs)
			if err != nil {
				b.Fatal(err)
			}
			bytes = res.Bytes
			b.StopTimer()
			// Remove the unpacked tree for the next iteration.
			removeTree(c, "/unpacked")
			b.StartTimer()
		}
		b.SetBytes(int64(bytes))
	})
}

func removeTree(c fsapi.Client, root string) {
	ents, err := c.ReadDir(root)
	if err != nil {
		return
	}
	for _, e := range ents {
		p := root + "/" + e.Name
		if fsapi.IsDir(e.Mode) {
			removeTree(c, p)
			c.Rmdir(p)
		} else {
			c.Unlink(p)
		}
	}
}

// BenchmarkFig12Git measures the git cycle on Simurgh.
func BenchmarkFig12Git(b *testing.B) {
	fs := mustFS(b, "simurgh", 512<<20)
	c := mustClient(b, fs)
	if err := c.Mkdir("/src", 0o755); err != nil {
		b.Fatal(err)
	}
	if _, err := corpus.Generate(c, "/src", corpus.LinuxLike(1)); err != nil {
		b.Fatal(err)
	}
	repo, err := gitbench.Init(fs, "/repo", "/src")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repo.Add(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("commit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repo.Commit("bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			repo.DeleteWorkTree()
			b.StartTimer()
			if _, err := repo.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecovery measures §5.5: full-crash recovery time of a populated
// volume (reported per recovered object).
func BenchmarkRecovery(b *testing.B) {
	dev := pmem.New(1 << 30)
	fs, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	c, _ := fs.Attach(fsapi.Root)
	c.Mkdir("/tree", 0o755)
	st, err := corpus.Generate(c, "/tree", corpus.LinuxLike(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mount without unmounting first: full recovery each time.
		if _, _, err := core.Mount(dev, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.Files), "files")
}

// BenchmarkLevelDBPut is the KV substrate in isolation on Simurgh.
func BenchmarkLevelDBPut(b *testing.B) {
	fs := mustFS(b, "simurgh", 512<<20)
	c := mustClient(b, fs)
	db, err := leveldb.Open(c, "/db", leveldb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	val := string(make([]byte, 500))
	b.SetBytes(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(fmt.Sprintf("key%09d", i), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFXMarkHarness smoke-runs the sweep harness itself.
func BenchmarkFXMarkHarness(b *testing.B) {
	w := fxmark.CreatePrivate()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunPoint(w, "simurgh", 256<<20, 1, 10*1e6); err != nil {
			b.Fatal(err)
		}
	}
}
