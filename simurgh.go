// Package simurgh is the public API of this reproduction of "Simurgh: A
// Fully Decentralized and Secure NVMM User Space File System" (SC '21).
//
// A Volume is an emulated NVMM device holding one Simurgh file system.
// Processes attach with their credentials and receive a POSIX-like Client;
// all attached clients operate on the shared device concurrently with no
// central coordinator, as in the paper's preload-library design.
//
// Quickstart:
//
//	vol, _ := simurgh.Create(256 << 20) // 256 MiB emulated NVMM
//	c, _ := vol.Attach(simurgh.Cred{UID: 1000, GID: 1000})
//	fd, _ := c.Create("/hello.txt", 0o644)
//	c.Write(fd, []byte("hi"))
//	c.Close(fd)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package simurgh

import (
	"simurgh/internal/core"
	"simurgh/internal/cost"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
)

// Re-exported identity and API types.
type (
	// Cred is a process identity (effective uid/gid).
	Cred = fsapi.Cred
	// Client is a process's handle on the file system.
	Client = fsapi.Client
	// FD is a file descriptor.
	FD = fsapi.FD
	// Stat describes a file.
	Stat = fsapi.Stat
	// DirEntry is a directory listing entry.
	DirEntry = fsapi.DirEntry
	// OpenFlag selects open modes.
	OpenFlag = fsapi.OpenFlag
	// RecoveryStats reports what a mount-time recovery did.
	RecoveryStats = core.RecoveryStats
)

// Open flags.
const (
	ORdonly = fsapi.ORdonly
	OWronly = fsapi.OWronly
	ORdwr   = fsapi.ORdwr
	OCreate = fsapi.OCreate
	OExcl   = fsapi.OExcl
	OTrunc  = fsapi.OTrunc
	OAppend = fsapi.OAppend
)

// Root is the superuser credential.
var Root = fsapi.Root

// Shared errors (see package fsapi for the full set).
var (
	ErrNotExist = fsapi.ErrNotExist
	ErrExist    = fsapi.ErrExist
	ErrNotDir   = fsapi.ErrNotDir
	ErrIsDir    = fsapi.ErrIsDir
	ErrNotEmpty = fsapi.ErrNotEmpty
	ErrPerm     = fsapi.ErrPerm
	ErrBadFD    = fsapi.ErrBadFD
	ErrNoSpace  = fsapi.ErrNoSpace
)

// Options tunes a Volume.
type Options struct {
	// RelaxedWrites disables the per-file exclusive write lock (the
	// "relaxed" variant of Fig 7k); the application must coordinate
	// concurrent writers itself.
	RelaxedWrites bool
	// ChargeProtectedCalls adds the paper's measured jmpp/pret cycle delta
	// (46 cycles @ 2.5 GHz) to every file-system call, as the evaluation
	// does. Off by default.
	ChargeProtectedCalls bool
	// Tracked enables durability tracking on the device so crashes can be
	// simulated (slower; for testing).
	Tracked bool
}

// Volume is an emulated NVMM device with a mounted Simurgh file system.
type Volume struct {
	dev *pmem.Device
	fs  *core.FS
}

// Create makes a fresh volume of the given size, formatted and mounted,
// owned by root.
func Create(size uint64) (*Volume, error) {
	return CreateWithOptions(size, Options{})
}

// CreateWithOptions makes a fresh volume with explicit options.
func CreateWithOptions(size uint64, opts Options) (*Volume, error) {
	dev := pmem.New(size)
	if opts.Tracked {
		dev.SetMode(pmem.ModeTracked)
	}
	fs, err := core.Format(dev, fsapi.Root, coreOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Volume{dev: dev, fs: fs}, nil
}

func coreOptions(opts Options) core.Options {
	co := core.Options{RelaxedWrites: opts.RelaxedWrites}
	if opts.ChargeProtectedCalls {
		co.Cost = cost.SimurghModel()
	}
	return co
}

// Attach registers a process and returns its client handle.
func (v *Volume) Attach(cred Cred) (Client, error) { return v.fs.Attach(cred) }

// Unmount marks the volume cleanly shut down.
func (v *Volume) Unmount() { v.fs.Unmount() }

// Crash simulates a power failure (Tracked volumes only): all stores that
// were not explicitly persisted are dropped.
func (v *Volume) Crash() { v.dev.Crash() }

// Remount re-mounts after a crash or unmount, running recovery as needed,
// and returns what the recovery found.
func (v *Volume) Remount(opts Options) (*RecoveryStats, error) {
	fs, stats, err := core.Mount(v.dev, coreOptions(opts))
	if err != nil {
		return nil, err
	}
	v.fs = fs
	return stats, nil
}

// Maintain runs the file-system maintenance check (§4.3): it compacts
// directory hash-block chains whose tails became empty and completes any
// leftover half-done operations. Safe to run concurrently with normal use.
func (v *Volume) Maintain() MaintainStats { return v.fs.Maintain() }

// MaintainStats reports what a maintenance pass reclaimed.
type MaintainStats = core.MaintainStats

// StatsSnapshot is a point-in-time view of the volume's per-operation
// observability counters: call/error counts, latency histograms and NVMM
// flush/fence/byte attribution per operation class. Diff two snapshots
// with Sub to scope them to an interval, or render one with WriteTable.
type StatsSnapshot = obs.Snapshot

// Stats snapshots the volume's per-operation counters.
func (v *Volume) Stats() StatsSnapshot { return v.fs.Stats() }

// SetStatsSamplePeriod sets how often operations are deep-sampled for
// latency and NVMM attribution: every period-th call (rounded up to a
// power of two; 1 samples every call). Call/error counts are always
// exact. The default period is obs.DefaultSamplePeriod.
func (v *Volume) SetStatsSamplePeriod(period int) { v.fs.Obs().SetSamplePeriod(period) }

// Device exposes the underlying emulated NVMM device.
func (v *Volume) Device() *pmem.Device { return v.dev }

// FS exposes the core file system (used by the benchmark harness).
func (v *Volume) FS() *core.FS { return v.fs }
