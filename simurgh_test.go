package simurgh_test

import (
	"errors"
	"testing"

	"simurgh"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	vol, err := simurgh.Create(32 << 20)
	if err != nil {
		t.Fatal(err)
	}
	defer vol.Unmount()
	c, err := vol.Attach(simurgh.Root)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := c.Create("/hello", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("facade")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stat("/hello")
	if err != nil || st.Size != 6 {
		t.Fatalf("stat = (%+v, %v)", st, err)
	}
	if _, err := c.Open("/absent", simurgh.ORdonly, 0); !errors.Is(err, simurgh.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeCrashAndRemount(t *testing.T) {
	vol, err := simurgh.CreateWithOptions(32<<20, simurgh.Options{Tracked: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := vol.Attach(simurgh.Root)
	fd, _ := c.Create("/durable", 0o644)
	c.Write(fd, []byte("kept"))
	c.Close(fd)
	vol.Crash()
	stats, err := vol.Remount(simurgh.Options{Tracked: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WasClean {
		t.Fatal("crash reported as clean shutdown")
	}
	c2, _ := vol.Attach(simurgh.Root)
	fd, err = c2.Open("/durable", simurgh.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, _ := c2.Read(fd, buf)
	if string(buf[:n]) != "kept" {
		t.Fatalf("content = %q", buf[:n])
	}
}

func TestFacadeRelaxedOption(t *testing.T) {
	vol, err := simurgh.CreateWithOptions(32<<20, simurgh.Options{RelaxedWrites: true, ChargeProtectedCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := vol.Attach(simurgh.Root)
	fd, _ := c.Create("/f", 0o644)
	if _, err := c.Write(fd, []byte("relaxed")); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePermissionsAcrossClients(t *testing.T) {
	vol, _ := simurgh.Create(32 << 20)
	root, _ := vol.Attach(simurgh.Root)
	root.Chmod("/", 0o755) // non-root cannot write the root dir
	user, _ := vol.Attach(simurgh.Cred{UID: 7, GID: 7})
	if _, err := user.Create("/nope", 0o644); !errors.Is(err, simurgh.ErrPerm) {
		t.Fatalf("err = %v, want ErrPerm", err)
	}
}
