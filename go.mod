module simurgh

go 1.24
