module simurgh

go 1.22
