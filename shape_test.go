package simurgh_test

import (
	"fmt"
	"testing"
	"time"

	"simurgh/internal/bench"
	"simurgh/internal/fsapi"
	"simurgh/internal/fxmark"
)

// Shape regression tests: the paper's qualitative findings that this
// reproduction is expected to preserve, checked at small scale with
// generous margins so they hold on noisy CI hosts. These are the claims
// EXPERIMENTS.md makes; if a change to the cost models or the file systems
// breaks one, this fails before the docs go stale.
//
// They are skipped in -short mode (each point runs a real timed workload).

func runPointBest(t *testing.T, w bench.Workload, fsName string, reps int) float64 {
	t.Helper()
	best := 0.0
	for i := 0; i < reps; i++ {
		r, err := bench.RunPoint(w, fsName, 512<<20, 1, 400*time.Millisecond)
		if err != nil {
			t.Fatalf("%s on %s: %v", w.Name, fsName, err)
		}
		if v := r.OpsPerSec(); v > best {
			best = v
		}
	}
	return best
}

func TestShapeSimurghWinsSharedDirCreates(t *testing.T) {
	if testing.Short() {
		t.Skip("timed workload")
	}
	w := fxmark.CreateShared()
	simurgh := runPointBest(t, w, "simurgh", 2)
	nova := runPointBest(t, w, "nova", 2)
	ext4 := runPointBest(t, w, "ext4-dax", 2)
	if simurgh <= nova {
		t.Errorf("create-shared: simurgh %.0f <= nova %.0f (paper: simurgh >2x nova)", simurgh, nova)
	}
	if nova <= ext4*0.8 {
		t.Errorf("create-shared: nova %.0f below ext4 %.0f (paper: nova above ext4)", nova, ext4)
	}
}

func TestShapePMFSCollapsesOnLargeDirectories(t *testing.T) {
	if testing.Short() {
		t.Skip("timed workload")
	}
	// PMFS's unsorted linear directories make creates O(n); by the end of a
	// timed window its rate must be far below Simurgh's hash directories.
	w := fxmark.CreateShared()
	simurgh := runPointBest(t, w, "simurgh", 1)
	pmfs := runPointBest(t, w, "pmfs", 1)
	if pmfs*3 > simurgh {
		t.Errorf("create-shared: pmfs %.0f not collapsed vs simurgh %.0f", pmfs, simurgh)
	}
}

func TestShapeResolveBenefitsFromProtectedCalls(t *testing.T) {
	if testing.Short() {
		t.Skip("timed workload")
	}
	// The ablation claim: the same design with syscall-cost entry is slower
	// on resolvepath; and Simurgh beats the kernel systems on it.
	w := fxmark.ResolvePrivate()
	jmpp := runPointBest(t, w, "simurgh", 3)
	sysc := runPointBest(t, w, "simurgh-syscall", 3)
	nova := runPointBest(t, w, "nova", 2)
	if jmpp <= nova {
		t.Errorf("resolve: simurgh %.0f <= nova %.0f (paper: simurgh ~2x kernel FSes)", jmpp, nova)
	}
	if sysc > jmpp*1.05 {
		t.Errorf("resolve: syscall variant %.0f faster than jmpp variant %.0f", sysc, jmpp)
	}
}

func TestShapeReadsTrackDeviceBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("timed workload")
	}
	w := fxmark.ReadShared()
	r, err := bench.RunPoint(w, "simurgh", 1<<30, 1, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	raw := bench.RawReadBandwidth(1<<30, 1, 400*time.Millisecond)
	// Simurgh must reach at least half the raw device bandwidth (the paper
	// shows it saturating the device).
	if r.MBPerSec() < raw.MBPerSec()/2 {
		t.Errorf("shared read %.0f MiB/s far below device %.0f MiB/s", r.MBPerSec(), raw.MBPerSec())
	}
}

func TestShapeCacheHotReadInflation(t *testing.T) {
	if testing.Short() {
		t.Skip("timed workload")
	}
	// Fig 6: the original FxMark's cache-hot reads report far more than the
	// adapted random reads — the reason the paper adapted the benchmark.
	hot, err := bench.RunPoint(fxmark.ReadSharedCacheHot(), "simurgh", 512<<20, 1, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := bench.RunPoint(fxmark.ReadShared(), "simurgh", 512<<20, 1, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if hot.MBPerSec() < rnd.MBPerSec()*2 {
		t.Errorf("cache-hot %.0f MiB/s not clearly above random %.0f MiB/s", hot.MBPerSec(), rnd.MBPerSec())
	}
}

func TestShapeEveryFSCompletesEveryMicrobench(t *testing.T) {
	if testing.Short() {
		t.Skip("timed workload")
	}
	// Completeness net: every Fig 7 workload must run on every system.
	for name, w := range fxmark.All() {
		for _, fsName := range bench.FSNames {
			r, err := bench.RunPoint(w, fsName, 512<<20, 1, 30*time.Millisecond)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, fsName, err)
			}
			if r.Ops == 0 {
				t.Fatalf("%s on %s: zero ops", name, fsName)
			}
		}
	}
}

// TestShapeAblationDocumented double-checks the ablation wiring exists for
// every variant EXPERIMENTS.md mentions.
func TestShapeAblationDocumented(t *testing.T) {
	for _, name := range []string{"simurgh", "simurgh-relaxed", "simurgh-syscall"} {
		fs, err := bench.MakeFS(name, 64<<20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, _ := fs.Attach(fsapi.Root)
		if _, err := c.Create(fmt.Sprintf("/%s-probe", name), 0o644); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
